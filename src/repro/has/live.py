"""Live-HAS service profiles: low-latency variants of the VoD services.

Live players chase the broadcast edge, so they cannot build the deep
buffers that make on-demand HAS resilient: segments are short (2s),
the buffer caps at a latency target of 2-6 seconds, and playback
starts after roughly one segment.  Any bandwidth dip longer than the
buffer rebuffers — these profiles are *rebuffer-prone by design*,
which is exactly the regime where the paper's coarse-grained detector
has to earn its keep.

Built with :func:`dataclasses.replace` from the VoD profiles in
:mod:`repro.has.services` so everything not latency-related (ladders,
DRM, beacons, catalog sizes) carries over; they register under the
``live`` workload in :mod:`repro.workloads`.
"""

from __future__ import annotations

import dataclasses

from repro.has.abr import AbrAlgorithm, HybridAbr, ThroughputAbr
from repro.has.services import SVC1, SVC2, SVC3, ServiceProfile
from repro.has.video import QualityLadder
from repro.tlsproxy.hosts import ServiceHostModel

__all__ = ["LIVE_SERVICES", "get_live_service"]


# Module-level named factories (not lambdas) so live profiles pickle
# into corpus-collection pool workers, same as the VoD factories.
def _live1_abr(ladder: QualityLadder) -> AbrAlgorithm:
    # Aggressive: chases throughput with little headroom, the way
    # latency-first players do.  Pays for it in rebuffers.
    return ThroughputAbr(ladder, safety=0.9)


def _live2_abr(ladder: QualityLadder) -> AbrAlgorithm:
    return HybridAbr(
        ladder, low_buffer_s=2.0, high_buffer_s=4.0, start_safety=1.0,
        up_safety=0.8, start_floor=1,
    )


def _live3_abr(ladder: QualityLadder) -> AbrAlgorithm:
    return ThroughputAbr(ladder, safety=0.8)


LIVE1 = dataclasses.replace(
    SVC1,
    name="live1",
    workload="live",
    segment_duration_s=2.0,
    buffer_capacity_s=6.0,
    startup_buffer_s=2.0,
    abr_factory=_live1_abr,
    host_model=ServiceHostModel(service="live1", n_edge_nodes=150, edges_per_session=2),
    # Live manifests refresh constantly; beacons report join latency.
    beacon_interval_s=15.0,
    # Short segments arrive relentlessly: connections never idle long
    # and carry far more requests before rotation.
    idle_timeout_s=8.0,
    max_requests_per_connection=48,
    range_requests_per_segment=(1, 1),
    abr_jitter=0.10,
)

LIVE2 = dataclasses.replace(
    SVC2,
    name="live2",
    workload="live",
    segment_duration_s=2.0,
    buffer_capacity_s=4.0,
    startup_buffer_s=2.0,
    abr_factory=_live2_abr,
    host_model=ServiceHostModel(service="live2", n_edge_nodes=100, edges_per_session=2),
    beacon_interval_s=20.0,
    idle_timeout_s=8.0,
    max_requests_per_connection=48,
    abr_jitter=0.08,
)

LIVE3 = dataclasses.replace(
    SVC3,
    name="live3",
    workload="live",
    segment_duration_s=2.0,
    buffer_capacity_s=3.0,
    startup_buffer_s=2.0,
    abr_factory=_live3_abr,
    host_model=ServiceHostModel(
        service="live3", n_edge_nodes=80, edges_per_session=2,
        separate_audio_host=False,
    ),
    beacon_interval_s=15.0,
    idle_timeout_s=6.0,
    max_requests_per_connection=64,
    abr_jitter=0.10,
)

#: Live-HAS profiles, by name.
LIVE_SERVICES: dict[str, ServiceProfile] = {
    p.name: p for p in (LIVE1, LIVE2, LIVE3)
}


def get_live_service(name: str) -> ServiceProfile:
    """Look up a live profile by name (``live1``/``live2``/``live3``)."""
    try:
        return LIVE_SERVICES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown live service {name!r}; expected one of {sorted(LIVE_SERVICES)}"
        ) from None
