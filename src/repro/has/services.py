"""Service profiles: Svc1, Svc2, Svc3.

The paper anonymizes three popular streaming services but describes
their designs precisely enough to model:

* **Svc1** — large (240 s) playback buffer; "attempts to avoid
  re-buffering by quickly filling the buffer at the expense of
  streaming at low video quality".  Modelled with a buffer-based ABR
  and a deep cushion: poor networks yield *low quality*, rarely stalls.
  Quality thresholds: ≤288p low, ≤480p medium, higher high.
* **Svc2** — small buffer, "switches video quality only when the video
  buffer runs low".  Modelled with a sticky hybrid ABR: poor networks
  yield *re-buffering*.  Thresholds: ≤360p low, 480p medium, ≥720p
  high.
* **Svc3** — between the two; only three quality levels observed in the
  paper's dataset, mapped one-to-one onto low/medium/high.

Each profile also fixes the service's wire personality: CDN hostname
structure, TLS connection reuse behaviour (idle timeout, keep-alive
request budget), telemetry cadence, and whether audio is fetched on a
separate connection — the knobs that shape how HTTP transactions
coalesce into TLS transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.has.abr import AbrAlgorithm, BufferBasedAbr, HybridAbr, ThroughputAbr
from repro.has.video import QualityLadder, QualityLevel, VideoCatalog
from repro.tlsproxy.hosts import ServiceHostModel

__all__ = ["ServiceProfile", "SERVICES", "get_service"]


@dataclass(frozen=True)
class ServiceProfile:
    """Everything service-specific the simulator needs.

    See the module docstring for how the three instances map onto the
    paper's descriptions.
    """

    name: str
    ladder: QualityLadder
    segment_duration_s: float
    buffer_capacity_s: float
    startup_buffer_s: float
    abr_factory: Callable[[QualityLadder], AbrAlgorithm]
    host_model: ServiceHostModel
    #: Resolution thresholds: ``resolution <= low_max`` → low,
    #: ``<= medium_max`` → medium, else high (paper §4.1).
    quality_low_max_resolution: int
    quality_medium_max_resolution: int
    separate_audio: bool = True
    audio_bitrate_bps: float = 128_000.0
    #: Fetch one audio transaction per this many video segments.
    audio_group: int = 2
    beacon_interval_s: float = 30.0
    idle_timeout_s: float = 15.0
    max_requests_per_connection: int = 16
    page_bytes: tuple[int, int] = (600_000, 1_800_000)
    manifest_bytes: tuple[int, int] = (20_000, 90_000)
    request_header_bytes: tuple[int, int] = (450, 900)
    uses_drm_license: bool = False
    n_catalog_videos: int = 60
    #: Segments are fetched as this many HTTP range requests (min, max);
    #: some services (Svc1) chunk every segment into several ranges.
    range_requests_per_segment: tuple[int, int] = (1, 1)
    #: Probability a segment's quality deviates ±1 rung from the ABR
    #: decision — real players oscillate for reasons invisible on the
    #: wire (renderer hints, A/B-tested heuristics, device limits).
    abr_jitter: float = 0.1
    #: Which workload registry entry this profile belongs to
    #: (:mod:`repro.workloads`): ``"has"`` for the on-demand services
    #: here, ``"live"`` for the low-buffer variants in
    #: :mod:`repro.has.live`.
    workload: str = "has"

    def __post_init__(self) -> None:
        if self.segment_duration_s <= 0:
            raise ValueError("segment duration must be positive")
        if self.startup_buffer_s > self.buffer_capacity_s:
            raise ValueError("startup buffer cannot exceed capacity")
        if self.audio_group < 1:
            raise ValueError("audio_group must be >= 1")
        if self.quality_low_max_resolution >= self.quality_medium_max_resolution:
            raise ValueError("quality thresholds must ascend")

    def make_abr(self) -> AbrAlgorithm:
        """Instantiate this service's adaptation algorithm."""
        return self.abr_factory(self.ladder)

    def make_catalog(self, seed: int = 0) -> VideoCatalog:
        """Build the service's content library (50-75 titles)."""
        return VideoCatalog(
            ladder=self.ladder,
            segment_duration_s=self.segment_duration_s,
            n_videos=self.n_catalog_videos,
            seed=seed,
            audio_bitrate_bps=self.audio_bitrate_bps,
        )

    def quality_category(self, quality_index: int) -> int:
        """Map a ladder index to 0 (low), 1 (medium), 2 (high)."""
        resolution = self.ladder[quality_index].resolution
        if resolution <= self.quality_low_max_resolution:
            return 0
        if resolution <= self.quality_medium_max_resolution:
            return 1
        return 2


# ABR factories are module-level named functions (not lambdas) so that
# profiles — and variants built from them with ``dataclasses.replace``
# — pickle cleanly into corpus-collection pool workers.
def _svc1_abr(ladder: QualityLadder) -> AbrAlgorithm:
    return BufferBasedAbr(
        ladder, reservoir_s=4.0, cushion_s=35.0, throughput_cap_safety=1.2
    )


def _svc2_abr(ladder: QualityLadder) -> AbrAlgorithm:
    return HybridAbr(
        ladder, low_buffer_s=4.0, high_buffer_s=15.0, start_safety=1.1,
        up_safety=0.85, start_floor=2,
    )


def _svc3_abr(ladder: QualityLadder) -> AbrAlgorithm:
    return ThroughputAbr(ladder, safety=0.75)


def _ladder(*levels: tuple[str, int, float]) -> QualityLadder:
    return QualityLadder(
        levels=tuple(
            QualityLevel(name=n, resolution=r, bitrate_bps=b * 1e6)
            for n, r, b in levels
        )
    )


_SVC1_LADDER = _ladder(
    ("144p", 144, 0.12),
    ("240p", 240, 0.25),
    ("288p", 288, 0.42),
    ("360p", 360, 0.65),
    ("480p", 480, 1.10),
    ("720p", 720, 2.40),
    ("1080p", 1080, 4.40),
)

_SVC2_LADDER = _ladder(
    ("240p", 240, 0.35),
    ("360p", 360, 0.75),
    ("480p", 480, 1.40),
    ("720p", 720, 3.00),
    ("1080p", 1080, 5.50),
)

_SVC3_LADDER = _ladder(
    ("360p", 360, 0.90),
    ("540p", 540, 1.80),
    ("720p", 720, 3.20),
)


SVC1 = ServiceProfile(
    name="svc1",
    ladder=_SVC1_LADDER,
    segment_duration_s=5.0,
    buffer_capacity_s=240.0,
    startup_buffer_s=10.0,
    abr_factory=_svc1_abr,
    host_model=ServiceHostModel(service="svc1", n_edge_nodes=500, edges_per_session=2),
    quality_low_max_resolution=288,
    quality_medium_max_resolution=480,
    separate_audio=True,
    audio_bitrate_bps=128_000.0,
    audio_group=2,
    beacon_interval_s=20.0,
    idle_timeout_s=10.0,
    max_requests_per_connection=12,
    n_catalog_videos=75,
    range_requests_per_segment=(2, 4),
    abr_jitter=0.15,
)

SVC2 = ServiceProfile(
    name="svc2",
    ladder=_SVC2_LADDER,
    segment_duration_s=4.0,
    buffer_capacity_s=60.0,
    startup_buffer_s=8.0,
    abr_factory=_svc2_abr,
    host_model=ServiceHostModel(service="svc2", n_edge_nodes=300, edges_per_session=2),
    quality_low_max_resolution=360,
    quality_medium_max_resolution=480,
    separate_audio=True,
    audio_bitrate_bps=96_000.0,
    audio_group=3,
    beacon_interval_s=45.0,
    idle_timeout_s=25.0,
    max_requests_per_connection=24,
    uses_drm_license=True,
    n_catalog_videos=60,
    abr_jitter=0.08,
)

SVC3 = ServiceProfile(
    name="svc3",
    ladder=_SVC3_LADDER,
    segment_duration_s=6.0,
    buffer_capacity_s=90.0,
    startup_buffer_s=12.0,
    abr_factory=_svc3_abr,
    host_model=ServiceHostModel(
        service="svc3", n_edge_nodes=200, edges_per_session=2, separate_audio_host=False
    ),
    quality_low_max_resolution=360,
    quality_medium_max_resolution=540,
    separate_audio=False,
    beacon_interval_s=30.0,
    idle_timeout_s=15.0,
    max_requests_per_connection=16,
    uses_drm_license=True,
    n_catalog_videos=50,
    abr_jitter=0.12,
)

#: The three services of the paper's evaluation, by name.
SERVICES: dict[str, ServiceProfile] = {p.name: p for p in (SVC1, SVC2, SVC3)}


def get_service(name: str) -> ServiceProfile:
    """Look up a service profile by name (``svc1``/``svc2``/``svc3``)."""
    try:
        return SERVICES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown service {name!r}; expected one of {sorted(SERVICES)}"
        ) from None
