"""The HAS player session simulator.

Drives one playback session end to end, standing in for the paper's
browser-automation framework: it fetches the player page, manifest and
(optionally) a DRM license, then runs the segment download loop — ABR
decision, video segment fetch, grouped audio fetches, telemetry beacons
— against the TLS connection pool, pacing downloads against the
playback buffer.  It returns everything every downstream consumer
needs: the proxy's TLS transactions, the HTTP transactions (Figure 2),
the raw transfers and connections (packet-trace synthesis for ML16),
and the playback schedule (ground-truth QoE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import telemetry
from repro.has.buffer import PlaybackSchedule, PlayEvent, Stall
from repro.has.abr import AbrState
from repro.has.services import ServiceProfile
from repro.has.video import Video
from repro.net.link import Link
from repro.net.tcp import TcpParams, Transfer
from repro.tlsproxy.connection import TlsConnectionPool
from repro.tlsproxy.hosts import SessionHosts
from repro.tlsproxy.proxy import TransparentProxy
from repro.tlsproxy.records import HttpTransaction, ResourceType, TlsTransaction

__all__ = ["SessionTrace", "PlayerSession", "ConnectionMeta", "UserBehavior"]

#: EWMA weight of the newest throughput sample.
_THROUGHPUT_EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class UserBehavior:
    """User-interaction model (the paper's limitation #2 / future work).

    Interactions are drawn per downloaded segment with probabilities
    derived from the configured per-minute rates.

    Parameters
    ----------
    pauses_per_minute:
        Expected pause events per minute of wall-clock session time.
    pause_duration_s:
        (min, max) uniform pause length in seconds.
    seeks_per_minute:
        Expected forward seeks per minute.
    seek_segments:
        (min, max) segments jumped over per seek.
    """

    pauses_per_minute: float = 0.0
    pause_duration_s: tuple[float, float] = (5.0, 45.0)
    seeks_per_minute: float = 0.0
    seek_segments: tuple[int, int] = (2, 20)

    def __post_init__(self) -> None:
        if self.pauses_per_minute < 0 or self.seeks_per_minute < 0:
            raise ValueError("rates must be non-negative")
        if self.pause_duration_s[0] < 0 or self.pause_duration_s[1] < self.pause_duration_s[0]:
            raise ValueError("invalid pause duration range")
        if self.seek_segments[0] < 1 or self.seek_segments[1] < self.seek_segments[0]:
            raise ValueError("invalid seek range")


@dataclass(frozen=True)
class ConnectionMeta:
    """Compact connection metadata retained for packet synthesis."""

    connection_id: int
    host: str
    opened_at: float
    rtt_s: float


@dataclass
class SessionTrace:
    """Everything one simulated session produced.

    Attributes
    ----------
    service_name, video_id:
        What was streamed.
    watch_duration_s:
        How long the viewer intended to watch (wall clock).
    session_end:
        When the player actually closed (content may end earlier).
    tls_transactions:
        The transparent proxy's export — the paper's input data.
    http_transactions:
        Application-level exchanges (Figure 2's fine-grained view).
    transfers, connections:
        Raw transport records for on-demand packet-trace synthesis.
    play_events, stalls:
        Ground-truth playback timeline.
    startup_delay:
        Seconds from session start to first rendered frame.
    hosts:
        The hostnames this session used.
    link_mean_bps:
        Mean bandwidth of the underlying trace (evaluation metadata).
    scenario:
        Name of the network scenario the session streamed over
        (``"identity"`` for the unimpaired pipeline).
    policed:
        Ground truth: did a token-bucket policer drop packets from this
        session?  Feeds the ``policed`` label.
    path_stats:
        Per-stage cumulative impairment counters (empty for identity).
    app_stats:
        Application-specific extras that have no HAS equivalent (e.g.
        RTC mean frame rate and freeze count).  Empty for HAS sessions;
        never serialized into corpora.
    """

    service_name: str
    video_id: str
    watch_duration_s: float
    session_end: float
    tls_transactions: list[TlsTransaction]
    http_transactions: list[HttpTransaction]
    transfers: list[Transfer]
    connections: list[ConnectionMeta]
    play_events: list[PlayEvent]
    stalls: list[Stall]
    startup_delay: float
    hosts: SessionHosts
    link_mean_bps: float
    n_pauses: int = 0
    n_seeks: int = 0
    scenario: str = "identity"
    policed: bool = False
    path_stats: dict = field(default_factory=dict)
    app_stats: dict = field(default_factory=dict)

    @property
    def play_time(self) -> float:
        """Total seconds of content played."""
        return float(sum(e.duration for e in self.play_events))

    @property
    def stall_time(self) -> float:
        """Total mid-session stall seconds."""
        return float(sum(s.duration for s in self.stalls))

    def per_second_quality(self) -> np.ndarray:
        """Per-second ground-truth log (quality index, -1 stall, -2 idle)."""
        schedule = PlaybackSchedule(startup_buffer_s=0.0)
        schedule.events = list(self.play_events)
        schedule.stalls = list(self.stalls)
        return schedule.per_second_quality(horizon=self.session_end)


class PlayerSession:
    """Simulates one playback session of ``video`` on ``profile``.

    Parameters
    ----------
    profile:
        The service being streamed (ABR, buffer sizes, TLS behaviour).
    video:
        The title to play.
    link:
        The access link: a bare :class:`~repro.net.link.Link` or a
        :class:`~repro.net.path.NetPath` with impairment stages.
    rng:
        Randomness source for this session.
    watch_duration_s:
        Wall-clock viewing budget; the session ends at this time or
        when the content finishes playing, whichever is earlier.
    tcp_params_factory:
        Draws per-connection path parameters (RTT, loss).
    warm_start:
        The user navigated here from within the service (back-to-back
        viewing): the heavy player page is already cached and only a
        small navigation payload is fetched.
    """

    def __init__(
        self,
        profile: ServiceProfile,
        video: Video,
        link: Link,
        rng: np.random.Generator,
        watch_duration_s: float,
        tcp_params_factory: Callable[[np.random.Generator], TcpParams],
        warm_start: bool = False,
        behavior: UserBehavior | None = None,
    ):
        if watch_duration_s <= 0:
            raise ValueError("watch duration must be positive")
        self.warm_start = warm_start
        self.behavior = behavior
        self._n_pauses = 0
        self._n_seeks = 0
        self.profile = profile
        self.video = video
        self.link = link
        self.rng = rng
        self.watch_duration_s = watch_duration_s
        self._pool = TlsConnectionPool(
            link,
            rng,
            tcp_params_factory,
            idle_timeout=profile.idle_timeout_s,
            max_requests_per_connection=profile.max_requests_per_connection,
        )
        self._hosts = profile.host_model.sample_session_hosts(rng)
        self._http: list[HttpTransaction] = []
        self._transfers: list[Transfer] = []
        self._throughput_bps: float | None = None

    # ------------------------------------------------------------------
    def _request_bytes(self) -> int:
        lo, hi = self.profile.request_header_bytes
        return int(self.rng.integers(lo, hi + 1))

    def _fetch(
        self,
        at: float,
        resource: ResourceType,
        response_bytes: int,
        quality_index: int = -1,
        request_bytes: int | None = None,
    ) -> HttpTransaction:
        host = self._hosts.host_for(resource, self.rng)
        req = request_bytes if request_bytes is not None else self._request_bytes()
        result = self._pool.fetch(
            at, host, req, response_bytes, resource, quality_index=quality_index
        )
        self._http.append(result.http)
        self._transfers.append(result.transfer)
        return result.http

    def _observe_throughput(self, nbytes: int, transfer: Transfer) -> None:
        if transfer.duration <= 0:
            return
        sample = nbytes * 8.0 / transfer.duration
        if self._throughput_bps is None:
            self._throughput_bps = sample
        else:
            self._throughput_bps = (
                _THROUGHPUT_EWMA_ALPHA * sample
                + (1.0 - _THROUGHPUT_EWMA_ALPHA) * self._throughput_bps
            )

    # ------------------------------------------------------------------
    def run(self) -> SessionTrace:
        """Execute the session and return its complete trace."""
        profile, video, rng = self.profile, self.video, self.rng

        # --- Startup sequence: player page, manifest, license. --------
        page_lo, page_hi = profile.page_bytes
        if self.warm_start:
            page_lo, page_hi = 40_000, 150_000
        page = self._fetch(
            0.0,
            ResourceType.PLAYER_PAGE,
            int(rng.integers(page_lo, page_hi)),
        )
        self._observe_throughput(page.response_bytes, self._transfers[-1])
        t = page.end
        manifest = self._fetch(
            t, ResourceType.MANIFEST, int(rng.integers(*profile.manifest_bytes))
        )
        self._observe_throughput(manifest.response_bytes, self._transfers[-1])
        t = manifest.end
        if profile.uses_drm_license:
            license_txn = self._fetch(
                t, ResourceType.LICENSE, int(rng.integers(2_000, 9_000))
            )
            t = license_txn.end

        # --- Segment loop. ---------------------------------------------
        abr = profile.make_abr()
        schedule = PlaybackSchedule(startup_buffer_s=profile.startup_buffer_s)
        watch_end = self.watch_duration_s
        beacon_interval = profile.beacon_interval_s
        next_beacon = beacon_interval
        last_quality: int | None = None
        seg = 0
        while seg < video.n_segments and t < watch_end:
            next_beacon = self._drain_beacons(next_beacon, t)
            state = AbrState(
                buffer_level_s=schedule.buffer_level(t),
                throughput_bps=self._throughput_bps,
                last_quality=last_quality,
                buffer_capacity_s=profile.buffer_capacity_s,
            )
            quality = abr.choose(state)
            if profile.abr_jitter > 0 and rng.random() < profile.abr_jitter:
                step = 1 if rng.random() < 0.5 else -1
                quality = max(0, min(quality + step, len(profile.ladder) - 1))
            size = video.segment_bytes(seg, quality)
            t = self._fetch_segment(t, seg, quality, size)
            schedule.segment_arrived(t, video.segment_play_duration(seg), quality)
            last_quality = quality

            if profile.separate_audio and seg % profile.audio_group == 0:
                group = range(seg, min(seg + profile.audio_group, video.n_segments))
                audio_bytes = sum(video.audio_segment_bytes(i) for i in group)
                audio = self._fetch(t, ResourceType.AUDIO_SEGMENT, audio_bytes)
                t = audio.end

            seg += 1
            if self.behavior is not None:
                seg = self._maybe_interact(t, seg, schedule)
            # Buffer-full pacing: wait until there is room for the next
            # segment.  These idle gaps are what let TLS idle timeouts
            # split a session into multiple transactions.
            if seg < video.n_segments:
                next_dur = video.segment_play_duration(seg)
                overflow = (
                    schedule.buffer_level(t) + next_dur - profile.buffer_capacity_s
                )
                if overflow > 0:
                    t += overflow

        # --- Wind down. --------------------------------------------------
        if not schedule.started:
            schedule.finish(min(t, watch_end))
        content_end = max(
            (e.end for e in schedule.events), default=min(t, watch_end)
        )
        if seg >= video.n_segments and t < watch_end:
            # Everything downloaded: the viewer watches until content or
            # patience runs out.
            pending = schedule.buffer_level(t)
            session_end = min(watch_end, t + pending) if pending else min(
                watch_end, max(content_end, t)
            )
        else:
            session_end = min(watch_end, max(t, content_end))
        schedule.finish(session_end)
        next_beacon = self._drain_beacons(next_beacon, session_end)
        # Closing beacon as the player shuts down.
        self._fetch(session_end, ResourceType.BEACON, int(rng.integers(200, 800)))
        self._pool.shutdown(session_end)

        # The link may be a NetPath; a bare Link reports identity with
        # no stats, so this block is free on the unimpaired path.
        scenario = getattr(self.link, "scenario", "identity")
        stats_fn = getattr(self.link, "stats", None)
        path_stats: dict[str, dict[str, float]] = stats_fn() if stats_fn else {}
        for stage, counters in path_stats.items():
            for key, value in counters.items():
                telemetry.count(f"path.{stage}.{key}", value)
        policed = bool(path_stats.get("policer", {}).get("dropped_packets", 0))

        proxy = TransparentProxy()
        proxy.observe_all(self._pool.all_connections)
        connections = [
            ConnectionMeta(
                connection_id=conn.connection_id,
                host=host,
                opened_at=conn.opened_at,
                rtt_s=conn.params.rtt_s,
            )
            for host, conn in self._pool.all_connections
        ]
        return SessionTrace(
            service_name=profile.name,
            video_id=video.video_id,
            watch_duration_s=self.watch_duration_s,
            session_end=session_end,
            tls_transactions=proxy.export(),
            http_transactions=list(self._http),
            transfers=list(self._transfers),
            connections=connections,
            play_events=list(schedule.events),
            stalls=list(schedule.stalls),
            startup_delay=schedule.startup_delay or 0.0,
            hosts=self._hosts,
            link_mean_bps=self.link.trace.mean_bps,
            n_pauses=self._n_pauses,
            n_seeks=self._n_seeks,
            scenario=scenario,
            policed=policed,
            path_stats=path_stats,
        )

    def _fetch_segment(self, at: float, seg: int, quality: int, size: int) -> float:
        """Download one video segment, possibly as several range requests.

        Returns the wall-clock completion time and feeds the throughput
        estimator one sample spanning the whole segment.
        """
        lo, hi = self.profile.range_requests_per_segment
        n_chunks = int(self.rng.integers(lo, hi + 1)) if hi > lo else lo
        n_chunks = max(1, min(n_chunks, size))
        bounds = np.linspace(0, size, n_chunks + 1).astype(int)
        t = at
        first_start = None
        for i in range(n_chunks):
            chunk = int(bounds[i + 1] - bounds[i])
            if chunk <= 0:
                continue
            txn = self._fetch(t, ResourceType.VIDEO_SEGMENT, chunk, quality_index=quality)
            if first_start is None:
                first_start = self._transfers[-1].start
            t = txn.end
        if first_start is not None and t > first_start:
            sample = size * 8.0 / (t - first_start)
            if self._throughput_bps is None:
                self._throughput_bps = sample
            else:
                self._throughput_bps = (
                    _THROUGHPUT_EWMA_ALPHA * sample
                    + (1.0 - _THROUGHPUT_EWMA_ALPHA) * self._throughput_bps
                )
        return t

    def _maybe_interact(self, t: float, seg: int, schedule: PlaybackSchedule) -> int:
        """Draw user interactions after one segment download.

        Pauses shift scheduled playback (downloads keep filling the
        buffer); forward seeks flush the buffer and jump the download
        position ahead.  Returns the possibly-updated segment index.
        """
        behavior = self.behavior
        minutes = self.profile.segment_duration_s / 60.0
        if behavior.pauses_per_minute > 0 and self.rng.random() < (
            behavior.pauses_per_minute * minutes
        ):
            duration = float(self.rng.uniform(*behavior.pause_duration_s))
            schedule.pause(at=t, duration=duration)
            self._n_pauses += 1
        if (
            behavior.seeks_per_minute > 0
            and seg < self.video.n_segments - 1
            and self.rng.random() < behavior.seeks_per_minute * minutes
        ):
            lo, hi = behavior.seek_segments
            jump = int(self.rng.integers(lo, hi + 1))
            schedule.seek_flush(at=t)
            seg = min(seg + jump, self.video.n_segments - 1)
            self._n_seeks += 1
        return seg

    def _drain_beacons(self, next_beacon: float, now: float) -> float:
        """Issue every telemetry beacon due at or before ``now``."""
        while next_beacon <= now:
            self._fetch(
                next_beacon,
                ResourceType.BEACON,
                int(self.rng.integers(200, 800)),
                request_bytes=int(self.rng.integers(900, 2_500)),
            )
            next_beacon += self.profile.beacon_interval_s
        return next_beacon
