"""Dataset containers.

A corpus of thousands of sessions cannot keep every simulated object
alive, so each session is reduced to a :class:`SessionRecord`: TLS
transactions (small — ~20 per session), HTTP transactions and transport
transfers as parallel numpy arrays (a few hundred rows), connection
metadata, and the ground-truth labels.  Packet traces are *not* stored;
they are synthesized on demand from the transfer arrays by
:func:`SessionRecord.packet_trace`.

Records serialize to plain JSON (optionally gzipped) so corpora can be
cached between experiment runs.  Large numeric arrays (``transfers``,
``http``, ``connections``) are stored as base64-encoded raw bytes
inside the JSON envelope (format 2) — an order of magnitude faster
than the old per-element list round-trip and exact to the bit.  Format
3 additionally hoists every session's TLS transactions into one
corpus-level columnar block (the struct-of-arrays layout of
:class:`~repro.tlsproxy.table.TransactionTable`, same base64 codec,
SNI hostnames dictionary-encoded), so loading reconstitutes the
transaction table directly instead of re-parsing per-session lists.
Format-1 (nested lists) and format-2 corpora still load; malformed
files raise :class:`DatasetFormatError`.

Format 4 is not a file at all but a *sharded directory* —
``manifest.json`` plus npz-backed columnar shard blocks — for corpora
that must not be materialized whole (see
:mod:`repro.collection.shards`).  :meth:`Dataset.load` dispatches on
the path: a directory (or its ``manifest.json``) returns a lazy
:class:`~repro.collection.shards.ShardedDataset`; and
:meth:`Dataset.save` with ``shard_size`` writes one.
"""

from __future__ import annotations

import base64
import binascii
import gzip
import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro import telemetry
from repro.has.player import SessionTrace
from repro.has.services import ServiceProfile
from repro.net.packets import PacketTrace, synthesize_packet_trace
from repro.net.tcp import Transfer
from repro.qoe.labels import SessionLabels, compute_labels
from repro.tlsproxy.records import ResourceType, TlsTransaction
from repro.tlsproxy.table import TransactionTable

__all__ = ["SessionRecord", "Dataset", "DatasetFormatError"]

_RESOURCE_CODES = {rt: i for i, rt in enumerate(ResourceType)}
_RESOURCE_FROM_CODE = {i: rt for rt, i in _RESOURCE_CODES.items()}

#: On-disk format version written by :meth:`Dataset.save` (files).
FORMAT_VERSION = 3

#: *File* format versions :meth:`Dataset.load` understands; format 4
#: is the sharded directory layout (:mod:`repro.collection.shards`).
SUPPORTED_FORMATS = (1, 2, 3)


class DatasetFormatError(RuntimeError):
    """A corpus file is malformed, truncated, or of an unknown format."""


def _encode_array(a: np.ndarray) -> dict:
    """Array -> JSON-safe dict: dtype + shape + base64 raw bytes."""
    a = np.ascontiguousarray(a)
    return {
        "dtype": a.dtype.str,
        "shape": list(a.shape),
        "b64": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def _decode_array(payload, dtype: np.dtype | type | str) -> np.ndarray:
    """Inverse of :func:`_encode_array`; accepts format-1 lists too."""
    if isinstance(payload, dict):
        raw = base64.b64decode(payload["b64"])
        a = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return a.reshape(payload["shape"]).astype(dtype, copy=True)
    return np.asarray(payload, dtype=dtype)


#: Columns of the transfer array, in order.
_TRANSFER_COLUMNS = (
    "connection_id",
    "start",
    "response_start",
    "end",
    "request_bytes",
    "response_bytes",
    "n_packets_down",
    "n_packets_up",
    "n_retransmits",
    "rtt_s",
)


@dataclass
class SessionRecord:
    """One collected session, compact enough to hold thousands of.

    Attributes
    ----------
    service:
        Service name (``svc1``/``svc2``/``svc3``).
    video_id:
        Title streamed.
    tls_transactions:
        The proxy's coarse-grained export — the estimator's input.
    http:
        HTTP transactions as parallel arrays: ``start``, ``end``,
        ``request_bytes``, ``response_bytes``, ``resource_code``,
        ``quality`` (dict of numpy arrays).
    transfers:
        Transport transfers as a ``(n, 10)`` float array with columns
        :data:`_TRANSFER_COLUMNS`; feeds packet-trace synthesis.
    connections:
        ``(connection_id, opened_at, rtt_s)`` rows, ``(m, 3)`` floats.
    labels:
        Ground-truth categorical QoE.
    """

    service: str
    video_id: str
    tls_transactions: list[TlsTransaction]
    http: dict[str, np.ndarray]
    transfers: np.ndarray
    connections: np.ndarray
    labels: SessionLabels
    watch_duration_s: float
    session_end: float
    play_time: float
    stall_time: float
    startup_delay: float
    link_mean_bps: float
    session_hosts: tuple[str, ...] = ()
    scenario: str = "identity"
    workload: str = "has"

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace: SessionTrace,
        profile: ServiceProfile,
        workload: str = "has",
    ) -> "SessionRecord":
        """Reduce a full simulation trace to its stored record."""
        http = {
            "start": np.array([t.start for t in trace.http_transactions]),
            "end": np.array([t.end for t in trace.http_transactions]),
            "request_bytes": np.array(
                [t.request_bytes for t in trace.http_transactions], dtype=np.int64
            ),
            "response_bytes": np.array(
                [t.response_bytes for t in trace.http_transactions], dtype=np.int64
            ),
            "resource_code": np.array(
                [_RESOURCE_CODES[t.resource_type] for t in trace.http_transactions],
                dtype=np.int8,
            ),
            "quality": np.array(
                [t.quality_index for t in trace.http_transactions], dtype=np.int8
            ),
        }
        transfers = np.array(
            [
                (
                    t.connection_id,
                    t.start,
                    t.response_start,
                    t.end,
                    t.request_bytes,
                    t.response_bytes,
                    t.n_packets_down,
                    t.n_packets_up,
                    t.n_retransmits,
                    t.rtt_s,
                )
                for t in trace.transfers
            ],
            dtype=np.float64,
        ).reshape(-1, len(_TRANSFER_COLUMNS))
        connections = np.array(
            [(c.connection_id, c.opened_at, c.rtt_s) for c in trace.connections],
            dtype=np.float64,
        ).reshape(-1, 3)
        return cls(
            service=trace.service_name,
            video_id=trace.video_id,
            tls_transactions=list(trace.tls_transactions),
            http=http,
            transfers=transfers,
            connections=connections,
            labels=compute_labels(trace, profile),
            watch_duration_s=trace.watch_duration_s,
            session_end=trace.session_end,
            play_time=trace.play_time,
            stall_time=trace.stall_time,
            startup_delay=trace.startup_delay,
            link_mean_bps=trace.link_mean_bps,
            session_hosts=tuple(sorted(trace.hosts.all_hosts)),
            scenario=getattr(trace, "scenario", "identity"),
            workload=workload,
        )

    # ------------------------------------------------------------------
    @property
    def n_tls_transactions(self) -> int:
        """TLS transactions in the session (the paper's ~19.5 for Svc1)."""
        return len(self.tls_transactions)

    @property
    def n_http_transactions(self) -> int:
        """HTTP transactions in the session."""
        return int(self.http["start"].shape[0])

    @property
    def n_packets(self) -> int:
        """Packets the session's trace would contain (without synthesis)."""
        if self.transfers.shape[0] == 0:
            return 0
        data = int(self.transfers[:, 6].sum() + self.transfers[:, 7].sum())
        # Handshake packets: TCP(3) + ClientHello(1) + server flight(3).
        return data + 7 * int(self.connections.shape[0])

    def iter_transfers(self) -> Iterator[Transfer]:
        """Reconstruct :class:`~repro.net.tcp.Transfer` objects."""
        for row in self.transfers:
            yield Transfer(
                connection_id=int(row[0]),
                start=float(row[1]),
                response_start=float(row[2]),
                end=float(row[3]),
                request_bytes=int(row[4]),
                response_bytes=int(row[5]),
                n_packets_down=int(row[6]),
                n_packets_up=int(row[7]),
                n_retransmits=int(row[8]),
                rtt_s=float(row[9]),
            )

    def packet_trace(self, seed: int = 0, pacing: str = "uniform") -> PacketTrace:
        """Synthesize this session's packet trace on demand.

        ``pacing="burst"`` front-loads data packets within each
        transfer — the token-bucket policing wire signature.
        """
        connections = [
            (int(row[0]), float(row[1]), float(row[2])) for row in self.connections
        ]
        return synthesize_packet_trace(
            self.iter_transfers(),
            connections,
            rng=np.random.default_rng(seed),
            pacing=pacing,
        )

    def resource_mask(self, resource: ResourceType) -> np.ndarray:
        """Boolean mask over HTTP transactions of the given type."""
        return self.http["resource_code"] == _RESOURCE_CODES[resource]

    # ------------------------------------------------------------------
    def to_dict(self, include_tls: bool = True) -> dict:
        """JSON-serializable representation.

        ``include_tls=False`` omits the per-session transaction rows —
        format-3 corpora store them once, columnar, at the corpus level.
        """
        payload = {
            "service": self.service,
            "video_id": self.video_id,
            "http": {k: _encode_array(v) for k, v in self.http.items()},
            "transfers": _encode_array(self.transfers),
            "connections": _encode_array(self.connections),
            "labels": {
                "rebuffering_ratio": self.labels.rebuffering_ratio,
                "rebuffering": self.labels.rebuffering,
                "quality": self.labels.quality,
                "combined": self.labels.combined,
            },
            "watch_duration_s": self.watch_duration_s,
            "session_end": self.session_end,
            "play_time": self.play_time,
            "stall_time": self.stall_time,
            "startup_delay": self.startup_delay,
            "link_mean_bps": self.link_mean_bps,
            "session_hosts": list(self.session_hosts),
        }
        # Scenario/workload metadata and the policed label are written
        # only when set: identity/has corpora must serialize
        # byte-for-byte as before those registries existed
        # (golden-digest contract).
        if self.scenario != "identity":
            payload["scenario"] = self.scenario
        if self.workload != "has":
            payload["workload"] = self.workload
        if self.labels.policed:
            payload["labels"]["policed"] = self.labels.policed
        if include_tls:
            payload["tls_transactions"] = [
                [t.start, t.end, t.uplink_bytes, t.downlink_bytes, t.sni]
                for t in self.tls_transactions
            ]
        return payload

    @classmethod
    def from_dict(
        cls,
        payload: dict,
        tls_transactions: list[TlsTransaction] | None = None,
    ) -> "SessionRecord":
        """Inverse of :meth:`to_dict` (accepts format 1 and 2 arrays).

        Format-3 corpora keep the transaction rows columnar at the
        corpus level; the loader passes each session's slice in via
        ``tls_transactions`` instead of the payload.
        """
        http = {
            "start": _decode_array(payload["http"]["start"], np.float64),
            "end": _decode_array(payload["http"]["end"], np.float64),
            "request_bytes": _decode_array(payload["http"]["request_bytes"], np.int64),
            "response_bytes": _decode_array(payload["http"]["response_bytes"], np.int64),
            "resource_code": _decode_array(payload["http"]["resource_code"], np.int8),
            "quality": _decode_array(payload["http"]["quality"], np.int8),
        }
        labels = SessionLabels(
            rebuffering_ratio=payload["labels"]["rebuffering_ratio"],
            rebuffering=payload["labels"]["rebuffering"],
            quality=payload["labels"]["quality"],
            combined=payload["labels"]["combined"],
            policed=int(payload["labels"].get("policed", 0)),
        )
        if tls_transactions is None:
            tls_transactions = [
                TlsTransaction(
                    start=row[0],
                    end=row[1],
                    uplink_bytes=int(row[2]),
                    downlink_bytes=int(row[3]),
                    sni=row[4],
                )
                for row in payload["tls_transactions"]
            ]
        return cls(
            service=payload["service"],
            video_id=payload["video_id"],
            tls_transactions=tls_transactions,
            http=http,
            transfers=_decode_array(payload["transfers"], np.float64).reshape(
                -1, len(_TRANSFER_COLUMNS)
            ),
            connections=_decode_array(payload["connections"], np.float64).reshape(
                -1, 3
            ),
            labels=labels,
            watch_duration_s=payload["watch_duration_s"],
            session_end=payload["session_end"],
            play_time=payload["play_time"],
            stall_time=payload["stall_time"],
            startup_delay=payload["startup_delay"],
            link_mean_bps=payload["link_mean_bps"],
            session_hosts=tuple(payload["session_hosts"]),
            scenario=payload.get("scenario", "identity"),
            workload=payload.get("workload", "has"),
        )


@dataclass
class Dataset:
    """A corpus of sessions from one service."""

    service: str
    sessions: list[SessionRecord] = field(default_factory=list)
    #: Cached columnar view of every session's TLS transactions,
    #: invalidated when the session count changes.
    _tls_table: TransactionTable | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[SessionRecord]:
        return iter(self.sessions)

    def __getitem__(self, index: int) -> SessionRecord:
        return self.sessions[index]

    @property
    def profile(self) -> ServiceProfile:
        """The profile this corpus was collected on.

        Resolved through the workload registry (imported lazily to
        keep this module importable without :mod:`repro.workloads`), so
        RTC and live corpora return their own profile types.
        """
        from repro.workloads import get_workload

        return get_workload(self.workload).get_profile(self.service)

    @property
    def workload(self) -> str:
        """The workload the corpus was collected under.

        Corpora are collected under exactly one workload, so the first
        session's record speaks for all (empty corpora are ``has``).
        """
        return self.sessions[0].workload if self.sessions else "has"

    @property
    def scenario(self) -> str:
        """The network scenario the corpus was collected under.

        Corpora are collected under exactly one scenario, so the first
        session's record speaks for all (empty corpora are identity).
        """
        return self.sessions[0].scenario if self.sessions else "identity"

    def labels(self, target: str) -> np.ndarray:
        """Ground-truth categories for a target (``combined`` etc.)."""
        return np.array([s.labels.get(target) for s in self.sessions], dtype=np.int64)

    def label_distribution(self, target: str) -> np.ndarray:
        """Fraction of sessions per category, ``[low, medium, high]``."""
        if not self.sessions:
            return np.zeros(3)
        counts = np.bincount(self.labels(target), minlength=3)
        return counts / counts.sum()

    def extend(self, records: Sequence[SessionRecord]) -> None:
        """Append records, enforcing service consistency."""
        for record in records:
            if record.service != self.service:
                raise ValueError(
                    f"record from {record.service!r} cannot join {self.service!r} dataset"
                )
            self.sessions.append(record)
        self._tls_table = None

    def tls_table(self) -> TransactionTable:
        """The corpus's TLS transactions as one columnar table.

        Built once and cached (format-3 loads arrive with it already
        populated); every vectorized consumer — feature extraction,
        boundary evaluation, serialization — shares this instance.  The
        cache tracks the session count, so a table built before direct
        ``sessions`` mutations is discarded; consumers that mutate
        records in place should call :meth:`invalidate_tls_table`.
        """
        table = self._tls_table
        if table is None or table.n_sessions != len(self.sessions):
            table = TransactionTable.from_sessions(
                [s.tls_transactions for s in self.sessions]
            )
            self._tls_table = table
        return table

    def invalidate_tls_table(self) -> None:
        """Drop the cached columnar view (after in-place session edits)."""
        self._tls_table = None

    # ------------------------------------------------------------------
    def save(self, path: str | Path, shard_size: int | None = None):
        """Write the corpus as (gzipped, if ``.gz``) format-3 JSON.

        With ``shard_size`` set, ``path`` becomes a format-4 *shard
        directory* instead (:func:`repro.collection.shards.save_sharded`
        — ``shard_size`` sessions per npz shard, manifest written
        last); the lazy :class:`~repro.collection.shards.ShardedDataset`
        view of what was written is returned.

        The TLS transactions of every session go into one corpus-level
        columnar block (``tls``): the four float64 columns and the
        offset index base64-encoded like every other array, SNI
        hostnames dictionary-encoded (unique host list + per-row int
        codes).  The write is atomic: bytes go to a temp file in the
        target directory which is then ``os.replace``d over ``path``,
        so a concurrent reader (parallel benchmark/experiment runs
        share the ``.cache/`` directory) never sees a truncated corpus.
        """
        path = Path(path)
        if shard_size is not None:
            from repro.collection.shards import save_sharded

            return save_sharded(self, path, shard_size)
        with telemetry.span("dataset.save", sessions=len(self.sessions)) as sp:
            table = self.tls_table()
            hosts = sorted(set(table.sni))
            host_code = {h: i for i, h in enumerate(hosts)}
            codes = np.fromiter(
                (host_code[s] for s in table.sni), dtype=np.int32, count=table.n_rows
            )
            payload = {
                "format": FORMAT_VERSION,
                "service": self.service,
                "tls": {
                    "start": _encode_array(table.start),
                    "end": _encode_array(table.end),
                    "uplink": _encode_array(table.uplink),
                    "downlink": _encode_array(table.downlink),
                    "offsets": _encode_array(table.offsets),
                    "hosts": hosts,
                    "host_codes": _encode_array(codes),
                },
                "sessions": [s.to_dict(include_tls=False) for s in self.sessions],
            }
            raw = json.dumps(payload, separators=(",", ":")).encode()
            if path.suffix == ".gz":
                raw = gzip.compress(raw, compresslevel=4)
            sp.set(bytes=len(raw))
            telemetry.count("dataset.bytes_written", len(raw))
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(raw)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    @classmethod
    def load(cls, path: str | Path):
        """Read a corpus written by :meth:`save` (formats 1 through 4).

        ``path`` may be a corpus *file* (formats 1-3, returning a
        :class:`Dataset`) or a format-4 shard *directory* — or its
        ``manifest.json`` — returning a lazy
        :class:`~repro.collection.shards.ShardedDataset` that reads
        only the manifest up front.

        Any malformed, truncated, or unknown-format corpus raises a
        single :class:`DatasetFormatError` naming the offending path —
        parsing internals (``KeyError``, ``binascii.Error``, torn gzip
        streams, ...) never leak.  A missing path keeps raising plain
        ``OSError``.
        """
        path = Path(path)
        if path.is_dir() or path.name == "manifest.json":
            from repro.collection.shards import ShardedDataset

            return ShardedDataset.load(path)
        raw = path.read_bytes()
        try:
            with telemetry.span("dataset.load", bytes=len(raw)) as sp:
                if path.suffix == ".gz":
                    raw = gzip.decompress(raw)
                payload = json.loads(raw)
                if not isinstance(payload, dict):
                    raise ValueError("corpus payload is not a JSON object")
                version = payload.get("format", 1)
                if version == 4:
                    raise ValueError(
                        "format 4 is a sharded directory layout, not a "
                        "file — pass the corpus directory (or its "
                        "manifest.json) instead"
                    )
                if version not in SUPPORTED_FORMATS:
                    raise ValueError(
                        f"unknown corpus format {version!r} "
                        f"(supported: {SUPPORTED_FORMATS})"
                    )
                sp.set(format=version)
                if version >= 3:
                    dataset = cls._from_payload_v3(payload)
                else:
                    dataset = cls(
                        service=payload["service"],
                        sessions=[
                            SessionRecord.from_dict(p) for p in payload["sessions"]
                        ],
                    )
                sp.set(sessions=len(dataset.sessions))
                dataset._format_version = version
                return dataset
        except (
            KeyError,
            IndexError,
            ValueError,
            TypeError,
            binascii.Error,
            EOFError,
            zlib.error,
            gzip.BadGzipFile,
            json.JSONDecodeError,
            UnicodeDecodeError,
        ) as exc:
            raise DatasetFormatError(f"corrupt corpus file {path}: {exc}") from exc

    @classmethod
    def _from_payload_v3(cls, payload: dict) -> "Dataset":
        """Materialize a format-3 corpus: columnar TLS block + sessions."""
        tls = payload["tls"]
        hosts = list(tls["hosts"])
        codes = _decode_array(tls["host_codes"], np.int64)
        table = TransactionTable(
            start=_decode_array(tls["start"], np.float64),
            end=_decode_array(tls["end"], np.float64),
            uplink=_decode_array(tls["uplink"], np.float64),
            downlink=_decode_array(tls["downlink"], np.float64),
            offsets=_decode_array(tls["offsets"], np.int64),
            sni=tuple(hosts[c] for c in codes),
        )
        if table.n_sessions != len(payload["sessions"]):
            raise ValueError(
                f"TLS offset index covers {table.n_sessions} sessions "
                f"but the corpus stores {len(payload['sessions'])}"
            )
        dataset = cls(
            service=payload["service"],
            sessions=[
                SessionRecord.from_dict(p, tls_transactions=table.transactions(i))
                for i, p in enumerate(payload["sessions"])
            ],
        )
        dataset._tls_table = table
        return dataset
