"""Session-collection harness (paper §4.1).

Streams sessions under emulated network conditions: each session draws
a bandwidth trace from the FCC/3G/LTE mixture, a title from the
service's catalog, a watch duration from 10-1200 seconds, and
per-connection path parameters (RTT, loss), then runs the player
simulator and packs the result into a :class:`SessionRecord`.
"""

from __future__ import annotations

import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry
from repro.collection.dataset import Dataset, SessionRecord
from repro.has.player import PlayerSession, SessionTrace
from repro.has.services import ServiceProfile
from repro.has.video import Video
from repro.config import get_config
from repro.net.bandwidth import BandwidthTrace, TraceFamily, generate_trace
from repro.net.scenarios import Scenario, resolve_scenario
from repro.net.tcp import TcpParams
from repro.parallel import parallel_map, resolve_jobs

if TYPE_CHECKING:
    from repro.workloads import Workload

__all__ = [
    "CollectionConfig",
    "default_tcp_params",
    "resolve_collection_scenario",
    "resolve_collection_workload",
    "collect_session",
    "collect_records",
    "collect_corpus",
]


def default_tcp_params(rng: np.random.Generator) -> TcpParams:
    """Draw path parameters for one connection.

    RTTs are log-normal around ~45 ms (CDN edges are close, but
    cellular tails are long); loss rates are log-uniform between 0.01%
    and 2%, covering clean broadband through congested cellular.
    """
    rtt = float(np.clip(np.exp(rng.normal(np.log(0.045), 0.4)), 0.01, 0.4))
    loss = float(np.exp(rng.uniform(np.log(1e-4), np.log(2e-2))))
    return TcpParams(rtt_s=rtt, loss_rate=loss)


@dataclass(frozen=True)
class CollectionConfig:
    """Knobs of the collection campaign.

    Defaults reproduce the paper's setup: watch durations spanning
    10-1200 s (log-uniform, so the Figure-3b duration buckets are all
    populated) and the FCC/3G/LTE trace mixture.

    ``scenario`` names the network-impairment scenario every session
    streams over; ``None`` inherits ``REPRO_SCENARIO`` (resolved at
    collection time and pinned into the config before worker dispatch,
    so pool workers never re-read the coordinator's environment).

    ``workload`` names the application model sessions run
    (:mod:`repro.workloads`); ``None`` inherits ``REPRO_WORKLOAD`` and
    is pinned the same way.  The default resolves to ``has``, which
    reproduces the pre-registry pipeline bit for bit.
    """

    min_watch_s: float = 30.0
    max_watch_s: float = 1200.0
    trace_weights: dict[TraceFamily, float] = field(
        default_factory=lambda: {
            TraceFamily.FCC: 0.30,
            TraceFamily.HSDPA_3G: 0.40,
            TraceFamily.LTE: 0.30,
        }
    )
    catalog_seed: int = 0
    scenario: str | Scenario | None = None
    workload: str | Workload | None = None

    def __post_init__(self) -> None:
        if not 0 < self.min_watch_s <= self.max_watch_s:
            raise ValueError("invalid watch-duration range")
        if not self.trace_weights:
            raise ValueError("trace mixture cannot be empty")
        if any(w < 0 for w in self.trace_weights.values()):
            raise ValueError("trace weights must be non-negative")
        # Normalize the trace mixture once instead of per session
        # (object.__setattr__ because the dataclass is frozen).
        families = tuple(self.trace_weights)
        probs = np.array([self.trace_weights[f] for f in families], dtype=float)
        object.__setattr__(self, "_trace_families", families)
        object.__setattr__(self, "_trace_probs", probs / probs.sum())

    def sample_watch_duration(self, rng: np.random.Generator) -> float:
        """Log-uniform watch duration in the configured range."""
        return float(
            np.exp(rng.uniform(np.log(self.min_watch_s), np.log(self.max_watch_s)))
        )

    def sample_trace(self, rng: np.random.Generator) -> BandwidthTrace:
        """Draw a bandwidth trace from the configured mixture."""
        families: tuple[TraceFamily, ...] = self._trace_families  # type: ignore[attr-defined]
        probs: np.ndarray = self._trace_probs  # type: ignore[attr-defined]
        family = families[int(rng.choice(len(families), p=probs))]
        return generate_trace(family, rng, duration=self.max_watch_s + 100.0)


def resolve_collection_scenario(
    config: CollectionConfig | None = None,
    scenario: str | Scenario | None = None,
) -> Scenario:
    """Resolve the scenario a collection run streams over.

    Precedence: an explicit ``scenario`` argument beats the config's
    pinned scenario, which beats the process environment
    (``REPRO_SCENARIO``).  Callers that fan work out to pool workers
    must pin the result into the config first — workers re-read their
    own environment, which may not match a coordinator-side override.
    """
    if scenario is not None:
        return resolve_scenario(scenario)
    if config is not None and config.scenario is not None:
        return resolve_scenario(config.scenario)
    return resolve_scenario(get_config().scenario)


def resolve_collection_workload(
    config: CollectionConfig | None = None,
    workload: str | Workload | None = None,
) -> Workload:
    """Resolve the workload a collection run generates.

    Same precedence chain as :func:`resolve_collection_scenario`:
    explicit argument > ``CollectionConfig.workload`` >
    ``REPRO_WORKLOAD``.  Imported lazily so this module stays importable
    without :mod:`repro.workloads` (which imports the profile modules).
    """
    from repro.workloads import resolve_workload

    if workload is not None:
        return resolve_workload(workload)
    if config is not None and config.workload is not None:
        return resolve_workload(config.workload)
    return resolve_workload(get_config().workload)


def collect_session(
    profile: ServiceProfile,
    video: Video,
    rng: np.random.Generator,
    trace: BandwidthTrace | None = None,
    watch_duration_s: float | None = None,
    config: CollectionConfig | None = None,
    warm_start: bool = False,
    scenario: str | Scenario | None = None,
) -> SessionTrace:
    """Stream one session and return the full simulation trace."""
    config = config or CollectionConfig()
    sc = resolve_collection_scenario(config, scenario)
    if trace is None:
        trace = config.sample_trace(rng)
    if watch_duration_s is None:
        watch_duration_s = config.sample_watch_duration(rng)
    player = PlayerSession(
        profile=profile,
        video=video,
        link=sc.build_path(trace),
        rng=rng,
        watch_duration_s=watch_duration_s,
        tcp_params_factory=default_tcp_params,
        warm_start=warm_start,
    )
    return player.run()


def collect_records(
    profile: ServiceProfile,
    config: CollectionConfig,
    seeds: list[np.random.SeedSequence],
) -> list[SessionRecord]:
    """Collect one run of sessions, one spawned seed per session.

    Each session gets its own generator seeded from a spawned
    :class:`~numpy.random.SeedSequence`, so the records depend only on
    the session's index — never on chunking, sharding, or worker
    count.  This is the unit of work both the in-process pool
    (:func:`collect_corpus`) and the shard fleet
    (:mod:`repro.collection.fleet`) execute.

    The workload's session source is built once per chunk (that is
    where catalogs are constructed), then driven once per seed — the
    exact draw order of the pre-registry harness, so default-workload
    corpora are bit-identical to it.
    """
    with telemetry.span("collect_chunk", sessions=len(seeds)):
        wl = resolve_collection_workload(config)
        collect_one = wl.session_source(profile, config)
        records = []
        for seed_seq in seeds:
            rng = np.random.default_rng(seed_seq)
            trace = collect_one(rng)
            records.append(
                SessionRecord.from_trace(trace, profile, workload=wl.name)
            )
        telemetry.count("collection.sessions", len(seeds))
    return records


def _collect_chunk(
    task: tuple[ServiceProfile, CollectionConfig, list[np.random.SeedSequence]],
) -> list[SessionRecord]:
    """Pool-worker entry point: unpack one chunk task."""
    profile, config, seeds = task
    return collect_records(profile, config, seeds)


def collect_corpus(
    service: str | ServiceProfile,
    n_sessions: int,
    seed: int = 0,
    config: CollectionConfig | None = None,
    n_jobs: int | None = None,
    workload: str | Workload | None = None,
) -> Dataset:
    """Collect a corpus of sessions for one service.

    The paper's corpora are 2,111 (Svc1), 2,216 (Svc2) and 1,440
    (Svc3) sessions; pass those counts to regenerate the evaluation at
    full scale, or fewer for quick runs.

    ``workload`` selects the application model (``has``/``live``/
    ``rtc``); string ``service`` names are looked up among the resolved
    workload's profiles.  A profile *object* carries its own workload
    tag, which wins over config/environment when no explicit argument
    is given.

    Sessions are independent, so collection fans out over a process
    pool (``n_jobs``; defaults to ``REPRO_JOBS``/all cores).  Each
    session draws its randomness from
    ``np.random.SeedSequence(seed).spawn(n_sessions)``, making the
    corpus bit-identical for every worker count.
    """
    if n_sessions < 0:
        raise ValueError("n_sessions must be non-negative")
    config = config or CollectionConfig()
    if workload is None and not isinstance(service, str):
        workload = getattr(service, "workload", None)
    wl = resolve_collection_workload(config, workload)
    profile = wl.get_profile(service) if isinstance(service, str) else service
    # Pin the resolved scenario and workload into the config before
    # dispatch: pool workers re-parse their own environment, so a
    # coordinator-side config.override() would otherwise silently
    # degrade to the defaults.
    config = dataclasses.replace(
        config, scenario=resolve_collection_scenario(config), workload=wl
    )
    jobs = resolve_jobs(n_jobs)
    if jobs > 1:
        try:  # custom profiles may close over unpicklable state
            pickle.dumps(profile)
        except Exception:
            jobs = 1
    with telemetry.span(
        "collect_corpus", service=profile.name, n_sessions=n_sessions, jobs=jobs
    ):
        seeds = np.random.SeedSequence(seed).spawn(n_sessions)
        # One chunk per worker: the catalog is rebuilt per chunk, and
        # session costs are i.i.d. enough that static chunks balance well.
        n_chunks = min(jobs, n_sessions) or 1
        bounds = np.linspace(0, n_sessions, n_chunks + 1).astype(int)
        tasks = [
            (profile, config, seeds[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        chunks = parallel_map(_collect_chunk, tasks, n_jobs=jobs, chunksize=1)
        dataset = Dataset(service=profile.name)
        for records in chunks:
            dataset.sessions.extend(records)
    return dataset
