"""Data-collection harness (paper §4.1).

Plays the role of the authors' browser-automation framework: streams
sessions under emulated network conditions drawn from the bandwidth
trace corpus, and collects — per session — the transparent proxy's TLS
transactions, the fine-grained HTTP/transfer records needed to
synthesize packet traces, and the player's ground-truth QoE, all packed
into a compact :class:`~repro.collection.dataset.SessionRecord`.
"""

from repro._deprecation import deprecated_reexports
from repro.collection.dataset import Dataset, DatasetFormatError, SessionRecord
from repro.collection.harness import (
    CollectionConfig,
    collect_session,
    default_tcp_params,
)

# collect_corpus moved to the stable facade; importing it from here
# still works but warns once.
__getattr__ = deprecated_reexports(
    __name__,
    {"collect_corpus": ("repro.collection.harness", "repro.api.collect_corpus")},
)

__all__ = [
    "SessionRecord",
    "Dataset",
    "DatasetFormatError",
    "CollectionConfig",
    "collect_session",
    "collect_corpus",
    "default_tcp_params",
]
