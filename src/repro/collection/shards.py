"""Sharded (format-4) corpora: out-of-core storage for corpus scale.

A format-4 corpus is a *directory* instead of one JSON blob::

    corpus.shards/
        manifest.json        # format, service, per-shard counts/digests
        shard-00000.npz      # chunked columnar block, npz-backed
        shard-00001.npz
        ...

Each shard packs a fixed run of sessions as plain numpy arrays — one
:class:`~repro.tlsproxy.table.TransactionTable` slab for the TLS
columns (the struct-of-arrays layout, SNI dictionary-encoded) plus
flat+offset encodings of the per-session HTTP/transfer/connection
arrays and scalar columns.  No base64-in-JSON: ``np.savez`` stores the
raw bytes, and ``np.load`` decompresses only the members a reader
touches, so reading a shard's label column never materializes its
transactions.

The manifest carries per-shard session counts, per-target label
distributions, and the SHA-256 digest of every shard file.  Its
canonical-JSON digest (:attr:`ShardedDataset.manifest_digest`) is the
corpus's content address and is what downstream
:mod:`repro.artifacts` fingerprints hang off — a warm pipeline run
reads nothing but the manifest.

Write protocol (crash safety): shard files land first, each atomically
(temp + ``os.replace``); the manifest is written **last**.  A crash
mid-write therefore leaves a directory without a (current) manifest,
which :meth:`ShardedDataset.load` reports as an incomplete corpus —
never a silently short one.  :meth:`ShardedDataset.verify` re-hashes
every shard against the manifest.

Loading a shard directory gives a lazy :class:`ShardedDataset`: shards
materialize on demand through a small LRU (``shards.cache_hit`` /
``shards.materialized`` telemetry counters prove cache behaviour), so
peak memory is bounded by the shard size, not the corpus size.
"""

from __future__ import annotations

import hashlib
import io
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence
import zipfile

import numpy as np

from repro import telemetry
from repro.artifacts import atomic_write_bytes, canonical_json
from repro.qoe.labels import TARGETS, SessionLabels
from repro.tlsproxy.table import TransactionTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.collection.dataset import Dataset, SessionRecord

__all__ = [
    "MANIFEST_NAME",
    "ShardEntry",
    "ShardedDataset",
    "save_sharded",
    "shard_name",
    "write_shard",
]

#: The manifest file every format-4 corpus directory must contain.
MANIFEST_NAME = "manifest.json"

#: Shard file naming (index -> file name).
_SHARD_NAME_FMT = "shard-{:05d}.npz"

#: Shards kept materialized per dataset (coordinator needs at most the
#: one it reads plus one of lookahead).
_DEFAULT_CACHED_SHARDS = 2


def shard_name(index: int) -> str:
    """Canonical shard file name for a shard index."""
    return _SHARD_NAME_FMT.format(index)


def _format_error(root: Path, message: str) -> Exception:
    from repro.collection.dataset import DatasetFormatError

    return DatasetFormatError(f"corrupt sharded corpus {root}: {message}")


# ----------------------------------------------------------------------
# Shard block codec: list[SessionRecord] <-> dict of arrays


def _str_array(values: Sequence[str]) -> np.ndarray:
    if not values:
        return np.empty(0, dtype="<U1")
    return np.asarray(list(values), dtype=np.str_)


def _offsets_of(counts: Iterable[int], n: int) -> np.ndarray:
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.fromiter(counts, dtype=np.int64, count=n), out=offsets[1:])
    return offsets


_HTTP_DTYPES = {
    "start": np.float64,
    "end": np.float64,
    "request_bytes": np.int64,
    "response_bytes": np.int64,
    "resource_code": np.int8,
    "quality": np.int8,
}

_SCALAR_COLUMNS = (
    "watch_duration_s",
    "session_end",
    "play_time",
    "stall_time",
    "startup_delay",
    "link_mean_bps",
)


def encode_shard(service: str, records: "Sequence[SessionRecord]") -> dict:
    """One shard's sessions as a flat dict of numpy arrays.

    Everything numeric keeps its exact dtype (float64 raw bytes, so the
    round-trip is bit-identical); strings become unicode arrays;
    variable-length per-session data is stored flat with an offset
    index, the same layout the transaction table uses.
    """
    n = len(records)
    table = TransactionTable.from_sessions([r.tls_transactions for r in records])
    arrays = {f"tls_{k}": v for k, v in table.to_arrays().items()}
    arrays["service"] = _str_array([service])
    arrays["video_id"] = _str_array([r.video_id for r in records])
    for column in _SCALAR_COLUMNS:
        arrays[column] = np.array(
            [getattr(r, column) for r in records], dtype=np.float64
        )
    arrays["label_rebuffering_ratio"] = np.array(
        [r.labels.rebuffering_ratio for r in records], dtype=np.float64
    )
    for target in TARGETS:
        arrays[f"label_{target}"] = np.array(
            [r.labels.get(target) for r in records], dtype=np.int64
        )
    # Scenario/workload metadata and the policed label appear only when
    # non-default: identity/has shards must serialize byte-for-byte as
    # before those registries existed (golden-digest contract).
    scenario = records[0].scenario if records else "identity"
    if scenario != "identity":
        arrays["scenario"] = _str_array([scenario])
    workload = records[0].workload if records else "has"
    if workload != "has":
        arrays["workload"] = _str_array([workload])
    policed = np.array([r.labels.policed for r in records], dtype=np.int64)
    if policed.any():
        arrays["label_policed"] = policed
    hosts = [h for r in records for h in r.session_hosts]
    arrays["session_hosts"] = _str_array(hosts)
    arrays["session_hosts_offsets"] = _offsets_of(
        (len(r.session_hosts) for r in records), n
    )
    arrays["http_offsets"] = _offsets_of(
        (r.http["start"].shape[0] for r in records), n
    )
    for column, dtype in _HTTP_DTYPES.items():
        parts = [np.asarray(r.http[column], dtype=dtype) for r in records]
        arrays[f"http_{column}"] = (
            np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
        )
    arrays["transfer_offsets"] = _offsets_of(
        (r.transfers.shape[0] for r in records), n
    )
    arrays["transfers"] = (
        np.concatenate([r.transfers for r in records], axis=0)
        if records
        else np.empty((0, 10))
    )
    arrays["connection_offsets"] = _offsets_of(
        (r.connections.shape[0] for r in records), n
    )
    arrays["connections"] = (
        np.concatenate([r.connections for r in records], axis=0)
        if records
        else np.empty((0, 3))
    )
    return arrays


def decode_shard(arrays: dict) -> "Dataset":
    """Inverse of :func:`encode_shard`: a one-shard :class:`Dataset`."""
    from repro.collection.dataset import Dataset, SessionRecord

    service = str(arrays["service"][0])
    scenario = str(arrays["scenario"][0]) if "scenario" in arrays else "identity"
    workload = str(arrays["workload"][0]) if "workload" in arrays else "has"
    policed = (
        np.asarray(arrays["label_policed"], dtype=np.int64)
        if "label_policed" in arrays
        else None
    )
    table = TransactionTable.from_arrays(
        {k[len("tls_"):]: arrays[k] for k in arrays if k.startswith("tls_")}
    )
    n = table.n_sessions
    host_offsets = np.asarray(arrays["session_hosts_offsets"], dtype=np.int64)
    http_offsets = np.asarray(arrays["http_offsets"], dtype=np.int64)
    transfer_offsets = np.asarray(arrays["transfer_offsets"], dtype=np.int64)
    connection_offsets = np.asarray(arrays["connection_offsets"], dtype=np.int64)
    for name, offsets in (
        ("session_hosts_offsets", host_offsets),
        ("http_offsets", http_offsets),
        ("transfer_offsets", transfer_offsets),
        ("connection_offsets", connection_offsets),
    ):
        if offsets.shape[0] != n + 1:
            raise ValueError(f"{name} does not cover every session")
    hosts = [str(h) for h in arrays["session_hosts"]]
    sessions = []
    for i in range(n):
        lo, hi = int(http_offsets[i]), int(http_offsets[i + 1])
        http = {
            column: np.asarray(
                arrays[f"http_{column}"][lo:hi], dtype=dtype
            ).copy()
            for column, dtype in _HTTP_DTYPES.items()
        }
        labels = SessionLabels(
            rebuffering_ratio=float(arrays["label_rebuffering_ratio"][i]),
            rebuffering=int(arrays["label_rebuffering"][i]),
            quality=int(arrays["label_quality"][i]),
            combined=int(arrays["label_combined"][i]),
            policed=int(policed[i]) if policed is not None else 0,
        )
        sessions.append(
            SessionRecord(
                service=service,
                video_id=str(arrays["video_id"][i]),
                tls_transactions=table.transactions(i),
                http=http,
                transfers=np.asarray(
                    arrays["transfers"][
                        transfer_offsets[i]:transfer_offsets[i + 1]
                    ],
                    dtype=np.float64,
                ).reshape(-1, 10).copy(),
                connections=np.asarray(
                    arrays["connections"][
                        connection_offsets[i]:connection_offsets[i + 1]
                    ],
                    dtype=np.float64,
                ).reshape(-1, 3).copy(),
                labels=labels,
                watch_duration_s=float(arrays["watch_duration_s"][i]),
                session_end=float(arrays["session_end"][i]),
                play_time=float(arrays["play_time"][i]),
                stall_time=float(arrays["stall_time"][i]),
                startup_delay=float(arrays["startup_delay"][i]),
                link_mean_bps=float(arrays["link_mean_bps"][i]),
                session_hosts=tuple(
                    hosts[host_offsets[i]:host_offsets[i + 1]]
                ),
                scenario=scenario,
                workload=workload,
            )
        )
    dataset = Dataset(service=service, sessions=sessions)
    dataset._tls_table = table
    return dataset


# ----------------------------------------------------------------------
# Manifest entries


@dataclass(frozen=True)
class ShardEntry:
    """One shard's manifest row."""

    name: str
    n_sessions: int
    sha256: str
    #: ``target -> [low, medium, high]`` session counts.
    label_counts: dict

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_sessions": self.n_sessions,
            "sha256": self.sha256,
            "label_counts": self.label_counts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardEntry":
        return cls(
            name=str(payload["name"]),
            n_sessions=int(payload["n_sessions"]),
            sha256=str(payload["sha256"]),
            label_counts={
                target: [int(c) for c in counts]
                for target, counts in payload["label_counts"].items()
            },
        )


def write_shard(
    root: str | Path,
    index: int,
    service: str,
    records: "Sequence[SessionRecord]",
) -> ShardEntry:
    """Serialize one shard atomically and return its manifest entry.

    The npz bytes are built in memory (one shard is small by
    construction), hashed, and committed with temp + ``os.replace`` —
    a reader never sees a torn shard file.
    """
    root = Path(root)
    name = shard_name(index)
    with telemetry.span("shard.write", shard=name, sessions=len(records)) as sp:
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **encode_shard(service, records))
        raw = buffer.getvalue()
        sp.set(bytes=len(raw))
        atomic_write_bytes(root / name, raw)
    label_counts = {
        target: np.bincount(
            np.array([r.labels.get(target) for r in records], dtype=np.int64),
            minlength=3,
        ).tolist()
        for target in TARGETS
    }
    policed = np.array([r.labels.policed for r in records], dtype=np.int64)
    if policed.any():
        # Manifest rows stay unchanged for clean corpora (digest
        # contract); impaired ones additionally count [clean, policed].
        label_counts["policed"] = np.bincount(policed, minlength=2).tolist()
    return ShardEntry(
        name=name,
        n_sessions=len(records),
        sha256=hashlib.sha256(raw).hexdigest(),
        label_counts=label_counts,
    )


def manifest_payload(
    service: str,
    shard_size: int,
    entries: Sequence[ShardEntry],
    scenario: str = "identity",
    workload: str = "has",
) -> dict:
    """The manifest dict for a list of shard entries.

    The scenario and workload keys are emitted only when non-default,
    so identity/has manifests — and therefore their digests, the
    artifact-cache content addresses — are byte-identical to
    pre-registry ones.
    """
    payload = {
        "format": 4,
        "service": service,
        "shard_size": int(shard_size),
        "n_sessions": int(sum(e.n_sessions for e in entries)),
        "shards": [e.to_dict() for e in entries],
    }
    if scenario != "identity":
        payload["scenario"] = str(scenario)
    if workload != "has":
        payload["workload"] = str(workload)
    return payload


def write_manifest(root: str | Path, payload: dict) -> None:
    """Commit the manifest (the write that makes the corpus visible)."""
    atomic_write_bytes(
        Path(root) / MANIFEST_NAME,
        (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode(),
    )


def save_sharded(dataset, path: str | Path, shard_size: int) -> "ShardedDataset":
    """Write any corpus as a format-4 shard directory.

    ``dataset`` is a :class:`~repro.collection.dataset.Dataset` or a
    :class:`ShardedDataset` (re-sharding); sessions are consumed
    shard-at-a-time, so peak memory is bounded by ``shard_size`` even
    when re-sharding a corpus that does not fit in RAM.  Shard files
    are written first (each atomic), the manifest last; any stale
    manifest is removed up front so a crash mid-write leaves an
    explicitly incomplete directory, and stale shard files beyond the
    new manifest are cleaned up afterwards.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    manifest = root / MANIFEST_NAME
    if manifest.exists():
        manifest.unlink()
    service = dataset.service
    with telemetry.span(
        "dataset.save_sharded", sessions=len(dataset), shard_size=shard_size
    ):
        entries: list[ShardEntry] = []
        pending: list = []
        for record in dataset:
            pending.append(record)
            if len(pending) == shard_size:
                entries.append(write_shard(root, len(entries), service, pending))
                pending = []
        if pending:
            entries.append(write_shard(root, len(entries), service, pending))
        keep = {e.name for e in entries}
        for stale in root.glob("shard-*.npz"):
            if stale.name not in keep:
                stale.unlink()
        write_manifest(
            root,
            manifest_payload(
                service,
                shard_size,
                entries,
                scenario=getattr(dataset, "scenario", "identity"),
                workload=getattr(dataset, "workload", "has"),
            ),
        )
    return ShardedDataset.load(root)


# ----------------------------------------------------------------------
# The lazy corpus view


class ShardedDataset:
    """A format-4 corpus: manifest in memory, shards loaded on demand.

    Duck-compatible with :class:`~repro.collection.dataset.Dataset`
    everywhere the pipeline reads corpora — ``service``, ``len()``,
    iteration (shard-at-a-time), ``labels``/``label_distribution``,
    ``profile`` — plus the shard-level access the out-of-core paths
    use (:meth:`shard`, :meth:`iter_shards`, :meth:`iter_tables`).
    Materialized shards sit in a small LRU; ``counters`` tallies
    ``materialized``/``cache_hits`` (mirrored as ``shards.*``
    telemetry counters) so cache behaviour is provable in benchmarks.
    """

    #: Format version of this layout (continues the file formats 1-3).
    format = 4

    def __init__(
        self,
        root: Path,
        payload: dict,
        max_cached_shards: int = _DEFAULT_CACHED_SHARDS,
    ):
        self.root = Path(root)
        self.service: str = str(payload["service"])
        self.scenario: str = str(payload.get("scenario", "identity"))
        self.workload: str = str(payload.get("workload", "has"))
        self.shard_size: int = int(payload["shard_size"])
        self.entries: list[ShardEntry] = [
            ShardEntry.from_dict(e) for e in payload["shards"]
        ]
        self.n_sessions: int = int(payload["n_sessions"])
        self.max_cached_shards = max_cached_shards
        self.counters = {"materialized": 0, "cache_hits": 0}
        self._payload = payload
        self._cache: OrderedDict[int, "Dataset"] = OrderedDict()
        self._bounds = np.zeros(len(self.entries) + 1, dtype=np.int64)
        counts = np.fromiter(
            (e.n_sessions for e in self.entries),
            dtype=np.int64,
            count=len(self.entries),
        )
        np.cumsum(counts, out=self._bounds[1:])
        if int(self._bounds[-1]) != self.n_sessions:
            raise ValueError(
                f"manifest claims {self.n_sessions} sessions but shards "
                f"hold {int(self._bounds[-1])}"
            )

    # -- loading -------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "ShardedDataset":
        """Open a shard directory (or its ``manifest.json``) lazily.

        Only the manifest is read.  A directory without one — an
        interrupted write, or simply not a corpus — raises
        :class:`~repro.collection.dataset.DatasetFormatError` with a
        message saying so; a malformed manifest likewise.
        """
        root = Path(path)
        if root.name == MANIFEST_NAME:
            root = root.parent
        manifest = root / MANIFEST_NAME
        if not manifest.is_file():
            raise _format_error(
                root,
                f"no {MANIFEST_NAME} (incomplete shard directory — "
                "interrupted write? — or not a corpus)",
            )
        try:
            payload = json.loads(manifest.read_text())
            if not isinstance(payload, dict):
                raise ValueError("manifest is not a JSON object")
            version = payload.get("format")
            if version != 4:
                raise ValueError(f"unknown shard-directory format {version!r}")
            return cls(root, payload)
        except (KeyError, IndexError, ValueError, TypeError) as exc:
            raise _format_error(root, str(exc)) from exc

    # -- dataset interface ---------------------------------------------
    @property
    def profile(self):
        """The profile this corpus was collected on (workload-aware)."""
        from repro.workloads import get_workload

        return get_workload(self.workload).get_profile(self.service)

    @property
    def n_shards(self) -> int:
        return len(self.entries)

    @property
    def manifest_digest(self) -> str:
        """Content address of the corpus (SHA-256 of the canonical
        manifest, which itself contains every shard's digest).  This is
        what :mod:`repro.artifacts` fingerprints chain from."""
        return hashlib.sha256(
            canonical_json(self._payload).encode()
        ).hexdigest()[:24]

    def __len__(self) -> int:
        return self.n_sessions

    def __iter__(self) -> "Iterator[SessionRecord]":
        for i in range(self.n_shards):
            yield from self.shard(i).sessions

    def __getitem__(self, index: int) -> "SessionRecord":
        if index < 0:
            index += self.n_sessions
        if not 0 <= index < self.n_sessions:
            raise IndexError(f"session index {index} out of range")
        s = int(np.searchsorted(self._bounds, index, side="right")) - 1
        return self.shard(s)[index - int(self._bounds[s])]

    def labels(self, target: str) -> np.ndarray:
        """Ground-truth categories, streamed from the label columns.

        Reads only each shard's ``label_<target>`` npz member — no
        transaction or transfer data is ever decompressed.  The
        ``policed`` column is optional on disk (clean shards omit it),
        so its absence decodes as all-zeros.
        """
        if target not in TARGETS and target != "policed":
            raise ValueError(
                f"unknown target {target!r}; expected one of "
                f"{TARGETS + ('policed',)}"
            )
        parts = []
        for i in range(self.n_shards):
            cached = self._cache.get(i)
            if cached is not None:
                parts.append(cached.labels(target))
                continue
            try:
                with np.load(self._shard_path(i), allow_pickle=False) as z:
                    member = f"label_{target}"
                    if target == "policed" and member not in z.files:
                        parts.append(
                            np.zeros(self.entries[i].n_sessions, dtype=np.int64)
                        )
                    else:
                        parts.append(np.asarray(z[member], dtype=np.int64))
            except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
                raise _format_error(
                    self.root, f"cannot read labels of {self.entries[i].name}: {exc}"
                ) from exc
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def label_distribution(self, target: str) -> np.ndarray:
        """Fraction of sessions per category, straight off the manifest."""
        if target not in TARGETS:
            raise ValueError(
                f"unknown target {target!r}; expected one of {TARGETS}"
            )
        counts = np.zeros(3, dtype=np.int64)
        for entry in self.entries:
            counts += np.asarray(entry.label_counts[target], dtype=np.int64)
        if counts.sum() == 0:
            return np.zeros(3)
        return counts / counts.sum()

    # -- shard access --------------------------------------------------
    def _shard_path(self, index: int) -> Path:
        return self.root / self.entries[index].name

    def shard(self, index: int) -> "Dataset":
        """Materialize one shard as a :class:`Dataset` (LRU-cached)."""
        if not 0 <= index < self.n_shards:
            raise IndexError(f"shard index {index} out of range")
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            self.counters["cache_hits"] += 1
            telemetry.count("shards.cache_hit")
            return cached
        entry = self.entries[index]
        with telemetry.span("shard.load", shard=entry.name) as sp:
            try:
                with np.load(self._shard_path(index), allow_pickle=False) as z:
                    dataset = decode_shard({name: z[name] for name in z.files})
            except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
                raise _format_error(
                    self.root, f"cannot read shard {entry.name}: {exc}"
                ) from exc
            if len(dataset) != entry.n_sessions:
                raise _format_error(
                    self.root,
                    f"shard {entry.name} holds {len(dataset)} sessions, "
                    f"manifest says {entry.n_sessions}",
                )
            sp.set(sessions=len(dataset))
        self.counters["materialized"] += 1
        telemetry.count("shards.materialized")
        self._cache[index] = dataset
        while len(self._cache) > self.max_cached_shards:
            self._cache.popitem(last=False)
        return dataset

    def iter_shards(self) -> "Iterator[tuple[ShardEntry, Dataset]]":
        """``(entry, shard)`` pairs, materialized one at a time."""
        for i, entry in enumerate(self.entries):
            yield entry, self.shard(i)

    def iter_tables(self) -> Iterator[TransactionTable]:
        """Per-shard transaction tables, for shard-at-a-time reduction."""
        for i in range(self.n_shards):
            yield self.shard(i).tls_table()

    def tls_table(self) -> TransactionTable:
        """The whole corpus's transactions as one table.

        This *materializes every shard* — it exists for compatibility
        with consumers that genuinely need the corpus-level view;
        out-of-core paths should use :meth:`iter_tables`.
        """
        return TransactionTable.concat(list(self.iter_tables()))

    def drop_caches(self) -> None:
        """Forget materialized shards (benchmarks simulate cold reads)."""
        self._cache.clear()

    def to_dataset(self) -> "Dataset":
        """Materialize the whole corpus as a monolithic dataset."""
        from repro.collection.dataset import Dataset

        return Dataset(service=self.service, sessions=list(self))

    # -- integrity -----------------------------------------------------
    def verify(self) -> dict:
        """Re-hash every shard file against the manifest.

        Returns ``{"shards": n, "bytes": total}`` on success; raises
        :class:`~repro.collection.dataset.DatasetFormatError` naming
        every missing or corrupt shard otherwise.
        """
        problems = []
        total = 0
        for entry in self.entries:
            path = self.root / entry.name
            try:
                raw = path.read_bytes()
            except OSError:
                problems.append(f"{entry.name}: missing")
                continue
            total += len(raw)
            actual = hashlib.sha256(raw).hexdigest()
            if actual != entry.sha256:
                problems.append(
                    f"{entry.name}: digest mismatch "
                    f"(manifest {entry.sha256[:12]}..., file {actual[:12]}...)"
                )
        if problems:
            raise _format_error(self.root, "; ".join(problems))
        return {"shards": self.n_shards, "bytes": total}
