"""Coordinator/worker shard fleet: collect, extract, score at scale.

The out-of-core counterpart of :mod:`repro.collection.harness`: a
coordinator process hands *shards* (not sessions) to a worker pool and
workers stream their results straight to disk, so corpus size never
bounds peak memory — only ``shard_size`` does.  The queue shape is the
broadcaster/receiver pattern: one task per shard submitted to
:func:`repro.parallel.parallel_dispatch`, workers pulling the next
shard as they free up.

Three task kinds, one shard each:

* **collect** — :func:`collect_corpus_sharded`: the worker simulates
  its shard's sessions (per-session ``SeedSequence.spawn`` streams, so
  the corpus is bit-identical for any worker count or shard size),
  writes the shard file itself, and returns only the manifest entry —
  no session payload ever crosses the queue.  The coordinator writes
  ``manifest.json`` last, in shard order.
* **extract** — :func:`extract_tls_sharded`: the coordinator first
  *probes* the artifact store for every shard's feature block
  (:meth:`~repro.artifacts.ArtifactStore.lookup`, counting hits); only
  the absent shards go to workers, which are pure compute — they load
  the shard from disk and return its matrix; the coordinator commits
  the results (counting misses).  Workers never touch the store, so
  process-local config overrides (tests pinning ``cache_dir``) cannot
  desynchronize the cache, and per-stage counters reconcile exactly:
  ``hits + misses == n_shards``.
* **score** — :func:`score_sharded`: extract + predict one shard per
  task, predictions concatenated in manifest order.

Every result is concatenated in manifest order and every per-session
computation is independent, so all three are bit-identical to their
monolithic counterparts for ``REPRO_JOBS=1`` and any other count.
"""

from __future__ import annotations

import dataclasses
import pickle
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.artifacts import get_store
from repro.collection.harness import (
    CollectionConfig,
    collect_records,
    resolve_collection_scenario,
    resolve_collection_workload,
)
from repro.collection.shards import (
    ShardEntry,
    ShardedDataset,
    decode_shard,
    manifest_payload,
    write_manifest,
    write_shard,
)
from repro.config import get_config
from repro.features.tls_features import (
    TEMPORAL_INTERVALS,
    extract_tls_table,
    feature_names,
)
from repro.has.services import ServiceProfile
from repro.parallel import parallel_dispatch, resolve_jobs

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "collect_corpus_sharded",
    "extract_tls_sharded",
    "score_sharded",
    "shard_bounds",
]

#: Sessions per shard when neither the caller nor ``REPRO_SHARD_SIZE``
#: says otherwise — large enough to amortize per-shard overhead, small
#: enough that a materialized shard is tens of megabytes.
DEFAULT_SHARD_SIZE = 512


def shard_bounds(n_sessions: int, shard_size: int) -> list[tuple[int, int]]:
    """``[lo, hi)`` session ranges of each shard, in shard order."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (lo, min(lo + shard_size, n_sessions))
        for lo in range(0, n_sessions, shard_size)
    ]


def _resolve_shard_size(shard_size: int | None) -> int:
    if shard_size is None:
        shard_size = get_config().shard_size
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return int(shard_size)


def _picklable(value: object) -> bool:
    try:  # custom profiles/models may close over unpicklable state
        pickle.dumps(value)
        return True
    except Exception:
        return False


# ----------------------------------------------------------------------
# Collection


def _collect_shard(task) -> dict:
    """Worker: simulate one shard's sessions and write the shard file.

    Only the manifest entry returns over the queue; the sessions go
    straight to disk, which is what bounds coordinator memory.
    """
    profile, config, root, index, seeds = task
    records = collect_records(profile, config, seeds)
    entry = write_shard(root, index, profile.name, records)
    return entry.to_dict()


def collect_corpus_sharded(
    service: str | ServiceProfile,
    n_sessions: int,
    out,
    shard_size: int | None = None,
    seed: int = 0,
    config: CollectionConfig | None = None,
    n_jobs: int | None = None,
    workload=None,
) -> ShardedDataset:
    """Collect a corpus directly into a format-4 shard directory.

    The randomness contract matches
    :func:`~repro.collection.harness.collect_corpus` exactly: session
    ``i`` draws from ``SeedSequence(seed).spawn(n_sessions)[i]``
    regardless of shard size or worker count, so the sessions are
    bit-identical to a monolithic collection with the same seed.
    ``shard_size`` defaults to ``REPRO_SHARD_SIZE`` and then to
    :data:`DEFAULT_SHARD_SIZE`.  Returns the lazy
    :class:`~repro.collection.shards.ShardedDataset` over ``out``.
    """
    if n_sessions < 0:
        raise ValueError("n_sessions must be non-negative")
    config = config or CollectionConfig()
    if workload is None and not isinstance(service, str):
        workload = getattr(service, "workload", None)
    wl = resolve_collection_workload(config, workload)
    profile = wl.get_profile(service) if isinstance(service, str) else service
    # Pin the resolved scenario and workload before dispatch: fleet
    # workers re-parse their own environment, so a coordinator-side
    # override would otherwise silently degrade to the defaults (and
    # break bit-identity between worker counts).
    scenario = resolve_collection_scenario(config)
    config = dataclasses.replace(config, scenario=scenario, workload=wl)
    shard_size = _resolve_shard_size(shard_size)
    root = Path(out)
    root.mkdir(parents=True, exist_ok=True)
    manifest = root / "manifest.json"
    if manifest.exists():
        manifest.unlink()
    jobs = resolve_jobs(n_jobs)
    if jobs > 1 and not _picklable(profile):
        jobs = 1
    with telemetry.span(
        "fleet.collect",
        service=profile.name,
        n_sessions=n_sessions,
        shard_size=shard_size,
        jobs=jobs,
    ) as sp:
        seeds = np.random.SeedSequence(seed).spawn(n_sessions)
        tasks = [
            (profile, config, root, index, seeds[lo:hi])
            for index, (lo, hi) in enumerate(shard_bounds(n_sessions, shard_size))
        ]
        sp.set(shards=len(tasks))
        raw_entries = parallel_dispatch(_collect_shard, tasks, n_jobs=jobs)
        entries = [ShardEntry.from_dict(e) for e in raw_entries]
        write_manifest(
            root,
            manifest_payload(
                profile.name,
                shard_size,
                entries,
                scenario=scenario.name,
                workload=wl.name,
            ),
        )
    return ShardedDataset.load(root)


# ----------------------------------------------------------------------
# Extraction

#: Artifact stage for per-shard TLS feature blocks.
TLS_SHARD_STAGE = "tls-features-shard"


def _extract_shard(task) -> np.ndarray:
    """Worker: pure compute — load one shard, return its feature block.

    Deliberately touches no artifact store: the coordinator owns all
    cache reads and writes, so hit/miss counters and on-disk state
    stay consistent no matter where workers inherited their config.
    """
    path, intervals = task
    with np.load(path, allow_pickle=False) as z:
        shard = decode_shard({name: z[name] for name in z.files})
    return extract_tls_table(shard.tls_table(), intervals)


def extract_tls_sharded(
    dataset: ShardedDataset,
    intervals: tuple[int, ...] = TEMPORAL_INTERVALS,
    n_jobs: int | None = None,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """TLS feature matrix of a sharded corpus, one artifact per shard.

    Probe-then-compute: every shard's block is first looked up in the
    artifact store under (stage, intervals, shard digest) — a warm run
    is all hits and touches nothing but the manifest and the cache.
    Missing blocks are computed by pool workers (one shard per task,
    loaded from disk inside the worker) and committed by the
    coordinator, counting one miss each.  Rows are stacked in manifest
    order, so the matrix is bit-identical to
    :func:`~repro.features.tls_features.extract_tls_matrix` on the
    monolithic corpus for any worker count.
    """
    names = feature_names(intervals)
    store = get_store()
    stage_config = {"intervals": list(intervals)}
    with telemetry.span(
        "fleet.extract", shards=dataset.n_shards, sessions=len(dataset)
    ) as sp:
        blocks: list[np.ndarray | None] = []
        missing: list[int] = []
        deps_of = [
            (f"shard:{entry.sha256}",) for entry in dataset.entries
        ]
        for i, deps in enumerate(deps_of):
            value, _ = store.lookup(TLS_SHARD_STAGE, stage_config, deps=deps)
            if value is None:
                blocks.append(None)
                missing.append(i)
            else:
                blocks.append(value["X"])
        sp.set(cached=dataset.n_shards - len(missing), computed=len(missing))
        if missing:
            tasks = [
                (str(dataset.root / dataset.entries[i].name), intervals)
                for i in missing
            ]
            computed = parallel_dispatch(_extract_shard, tasks, n_jobs=n_jobs)
            for i, X in zip(missing, computed):
                value, _ = store.get_or_compute(
                    TLS_SHARD_STAGE,
                    stage_config,
                    build=lambda X=X: {"X": X},
                    deps=deps_of[i],
                )
                blocks[i] = value["X"]
        matrix = (
            np.vstack([b for b in blocks if b is not None and b.shape[0]])
            if any(b is not None and b.shape[0] for b in blocks)
            else np.empty((0, len(names)))
        )
    return matrix, names


# ----------------------------------------------------------------------
# Scoring


def _score_shard(task) -> np.ndarray:
    """Worker: extract one shard's features and run the model on them."""
    model, path, intervals = task
    X = _extract_shard((path, intervals))
    return np.asarray(model.predict(X))


def score_sharded(
    model,
    dataset: ShardedDataset,
    intervals: tuple[int, ...] = TEMPORAL_INTERVALS,
    n_jobs: int | None = None,
) -> np.ndarray:
    """Model predictions over a sharded corpus, one shard per task.

    Workers extract and predict; the coordinator concatenates in
    manifest order.  Models predict row-independently, so the result
    equals predicting on the monolithic feature matrix.
    """
    jobs = resolve_jobs(n_jobs)
    if jobs > 1 and not _picklable(model):
        jobs = 1
    with telemetry.span(
        "fleet.score", shards=dataset.n_shards, sessions=len(dataset)
    ):
        tasks = [
            (model, str(dataset.root / entry.name), intervals)
            for entry in dataset.entries
        ]
        parts = parallel_dispatch(_score_shard, tasks, n_jobs=jobs)
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
