"""The 38 TLS-transaction features of the paper (§3, Table 1).

Three groups, all computable from nothing but (start, end, uplink
bytes, downlink bytes) of a session's TLS transactions:

* **Session-level (4)** — ``SDR_DL``, ``SDR_UL`` (session data rates),
  ``SES_DUR`` (duration), ``TRANS_PER_SEC``.
* **Transaction statistics (18)** — min/median/max of six
  per-transaction metrics: ``DL_SIZE``, ``UL_SIZE``, ``DUR``, ``TDR``
  (transaction data rate), ``D2U`` (downlink-to-uplink ratio), ``IAT``
  (inter-arrival time of transaction starts).
* **Temporal (16)** — cumulative downlink and uplink bytes inside the
  growing intervals ``[0, X]`` for X ∈ {30, 60, 120, 240, 480, 720,
  960, 1200} seconds from session start; transactions partially
  overlapping an interval contribute pro-rata to their overlap (the
  paper's footnote 6 approximation).

Rates are in bytes/second and sizes in bytes; tree models are
scale-invariant and the distance-based models standardize internally.

Two extraction paths produce bit-identical output:

* :func:`extract_tls_features` — the per-session reference
  implementation (one transaction list in, one vector out).
* :func:`extract_tls_matrix` — the columnar fast path: one
  :class:`~repro.tlsproxy.table.TransactionTable` for the whole corpus,
  every feature computed with segment reductions, no per-session loop.

Both paths sum with the sequential left-to-right order of
``np.add.reduceat`` (see :mod:`repro.tlsproxy.table`), which is what
makes ``np.array_equal`` between them hold exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import telemetry
from repro.tlsproxy.records import TlsTransaction, transactions_to_columns
from repro.tlsproxy.table import (
    TransactionTable,
    ordered_sum,
    segment_min_med_max,
    segment_sum,
)

__all__ = [
    "TEMPORAL_INTERVALS",
    "TLS_FEATURE_NAMES",
    "agnostic_feature_names",
    "feature_groups",
    "extract_tls_features",
    "extract_tls_matrix",
    "extract_tls_table",
    "select_features",
]

#: Interval end-points (seconds) for the temporal features.  The paper
#: treats these as a tunable hyperparameter; these are its defaults,
#: finer near session start where an empty buffer makes QoE fragile.
TEMPORAL_INTERVALS: tuple[int, ...] = (30, 60, 120, 240, 480, 720, 960, 1200)

_SESSION_FEATURES = ("SDR_DL", "SDR_UL", "SES_DUR", "TRANS_PER_SEC")
_TXN_METRICS = ("DL_SIZE", "UL_SIZE", "DUR", "TDR", "D2U", "IAT")
_TXN_STATS = ("MIN", "MED", "MAX")
_TXN_FEATURES = tuple(f"{m}_{s}" for m in _TXN_METRICS for s in _TXN_STATS)
_TEMPORAL_FEATURES = tuple(
    f"CUM_{direction}_{x}s" for x in TEMPORAL_INTERVALS for direction in ("DL", "UL")
)

#: All 38 feature names, in extraction order.
TLS_FEATURE_NAMES: tuple[str, ...] = (
    _SESSION_FEATURES + _TXN_FEATURES + _TEMPORAL_FEATURES
)


def temporal_feature_names(
    intervals: tuple[int, ...] = TEMPORAL_INTERVALS,
) -> tuple[str, ...]:
    """Temporal feature names for a given interval grid."""
    return tuple(
        f"CUM_{direction}_{x}s" for x in intervals for direction in ("DL", "UL")
    )


def feature_names(intervals: tuple[int, ...] = TEMPORAL_INTERVALS) -> tuple[str, ...]:
    """Full feature schema for a given temporal-interval grid."""
    return _SESSION_FEATURES + _TXN_FEATURES + temporal_feature_names(intervals)


def feature_groups() -> dict[str, tuple[str, ...]]:
    """The paper's three feature groups (Table 1 / Table 3 ablation)."""
    return {
        "session_level": _SESSION_FEATURES,
        "transaction_stats": _TXN_FEATURES,
        "temporal": _TEMPORAL_FEATURES,
    }


def agnostic_feature_names() -> tuple[str, ...]:
    """The application-agnostic feature subset (Berger et al. style).

    The 22 session-level + transaction-statistic features: rates,
    sizes, durations, and ratios that make no assumption about the
    application's traffic shape.  What this drops is the temporal
    group, whose cumulative-byte interval grid is tuned to buffered
    HAS sessions (startup burst, then steady state out to 1200 s) —
    the assumption RTC calls and live streams violate.
    """
    return _SESSION_FEATURES + _TXN_FEATURES


def select_features(
    X: np.ndarray,
    names: Sequence[str],
    subset: Sequence[str],
) -> np.ndarray:
    """Column-project a feature matrix onto a named subset, in order.

    Raises ``ValueError`` naming any requested feature absent from
    ``names`` (e.g. asking for a temporal column of an interval grid
    the matrix was not extracted with).
    """
    index = {name: i for i, name in enumerate(names)}
    missing = [name for name in subset if name not in index]
    if missing:
        raise ValueError(f"features not in this matrix: {missing}")
    cols = np.fromiter((index[name] for name in subset), dtype=np.int64)
    return np.asarray(X)[:, cols]


def _stat_triple(values: np.ndarray) -> tuple[float, float, float]:
    """(min, median, max); zeros when there are no values."""
    if values.size == 0:
        return 0.0, 0.0, 0.0
    return float(values.min()), float(np.median(values)), float(values.max())


def extract_tls_features(
    transactions: Sequence[TlsTransaction],
    intervals: tuple[int, ...] = TEMPORAL_INTERVALS,
) -> np.ndarray:
    """The feature vector of one session (38-dim for the paper's grid).

    ``transactions`` is everything the proxy exported for the session;
    order does not matter.  ``intervals`` is the temporal-interval
    hyperparameter (paper §3); the default is the paper's grid.

    This is the reference implementation the columnar fast path
    (:func:`extract_tls_matrix`) is held bit-identical to.
    """
    if not transactions:
        raise ValueError("a session needs at least one TLS transaction")
    starts, ends, uplink, downlink, _ = transactions_to_columns(transactions)

    session_start = float(starts.min())
    session_end = float(ends.max())
    ses_dur = max(session_end - session_start, 1e-9)
    n = len(transactions)

    features = [
        ordered_sum(downlink) / ses_dur,  # SDR_DL
        ordered_sum(uplink) / ses_dur,  # SDR_UL
        ses_dur,  # SES_DUR
        n / ses_dur,  # TRANS_PER_SEC
    ]

    durations = ends - starts
    with np.errstate(divide="ignore", invalid="ignore"):
        tdr = np.where(durations > 0, downlink / np.maximum(durations, 1e-9), downlink)
        d2u = np.where(uplink > 0, downlink / np.maximum(uplink, 1e-9), downlink)
    iat = np.diff(np.sort(starts))
    for metric in (downlink, uplink, durations, tdr, d2u, iat):
        features.extend(_stat_triple(np.asarray(metric, dtype=np.float64)))

    # Temporal: pro-rata share of each transaction inside [0, X].
    rel_start = starts - session_start
    rel_end = ends - session_start
    span = np.maximum(rel_end - rel_start, 1e-9)
    for x in intervals:
        overlap = np.clip(np.minimum(rel_end, x) - rel_start, 0.0, None)
        share = np.minimum(overlap / span, 1.0)
        features.append(ordered_sum(downlink * share))
        features.append(ordered_sum(uplink * share))

    vector = np.asarray(features, dtype=np.float64)
    if vector.shape[0] != len(feature_names(intervals)):
        raise AssertionError("feature vector length drifted from the schema")
    return vector


def extract_tls_table(
    table: TransactionTable,
    intervals: tuple[int, ...] = TEMPORAL_INTERVALS,
) -> np.ndarray:
    """Columnar kernel: the whole corpus's features via segment reductions.

    One row per table session, bit-identical to running
    :func:`extract_tls_features` on each session's transactions.  No
    per-session Python loop: every feature is a reduction
    (``reduceat``/sorted-offset arithmetic) over the flat columns.
    """
    counts = table.counts
    if np.any(counts == 0):
        empty = int(np.flatnonzero(counts == 0)[0])
        raise ValueError(
            f"session {empty} has no TLS transactions; drop empty sessions "
            "before feature extraction (every session needs at least one "
            "transaction)"
        )
    starts, ends = table.start, table.end
    uplink, downlink = table.uplink, table.downlink
    offsets = table.offsets
    lo = offsets[:-1]
    segment_ids = table.session_ids

    session_start = np.minimum.reduceat(starts, lo)
    session_end = np.maximum.reduceat(ends, lo)
    ses_dur = np.maximum(session_end - session_start, 1e-9)

    columns = [
        segment_sum(downlink, offsets) / ses_dur,  # SDR_DL
        segment_sum(uplink, offsets) / ses_dur,  # SDR_UL
        ses_dur,  # SES_DUR
        counts.astype(np.float64) / ses_dur,  # TRANS_PER_SEC
    ]

    durations = ends - starts
    with np.errstate(divide="ignore", invalid="ignore"):
        tdr = np.where(durations > 0, downlink / np.maximum(durations, 1e-9), downlink)
        d2u = np.where(uplink > 0, downlink / np.maximum(uplink, 1e-9), downlink)

    # IAT: diffs of within-session sorted start times.  Sorting the
    # flat column by (session, start) keeps sessions contiguous, so the
    # per-row diff is valid everywhere except the first row of each
    # session, which is dropped.
    sorted_starts = starts[np.lexsort((starts, segment_ids))]
    diffs = sorted_starts[1:] - sorted_starts[:-1]
    keep = np.ones(max(table.n_rows - 1, 0), dtype=bool)
    keep[lo[1:] - 1] = False
    iat = diffs[keep]
    iat_counts = counts - 1
    iat_offsets = np.zeros(offsets.shape[0], dtype=np.int64)
    np.cumsum(iat_counts, out=iat_offsets[1:])
    iat_ids = np.repeat(np.arange(table.n_sessions, dtype=np.int64), iat_counts)

    for metric, m_offsets, m_ids in (
        (downlink, offsets, segment_ids),
        (uplink, offsets, segment_ids),
        (durations, offsets, segment_ids),
        (tdr, offsets, segment_ids),
        (d2u, offsets, segment_ids),
        (iat, iat_offsets, iat_ids),
    ):
        columns.extend(segment_min_med_max(metric, m_offsets, m_ids))

    # Temporal: pro-rata share of each transaction inside [0, X].
    rel_start = starts - session_start[segment_ids]
    rel_end = ends - session_start[segment_ids]
    span = np.maximum(rel_end - rel_start, 1e-9)
    for x in intervals:
        overlap = np.clip(np.minimum(rel_end, x) - rel_start, 0.0, None)
        share = np.minimum(overlap / span, 1.0)
        columns.append(segment_sum(downlink * share, offsets))
        columns.append(segment_sum(uplink * share, offsets))

    matrix = np.column_stack(columns)
    if matrix.shape[1] != len(feature_names(intervals)):
        raise AssertionError("feature matrix width drifted from the schema")
    return matrix


def extract_tls_matrix(
    dataset,
    intervals: tuple[int, ...] = TEMPORAL_INTERVALS,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Feature matrix for a whole corpus — the columnar fast path.

    ``dataset`` is a :class:`~repro.collection.dataset.Dataset` (whose
    cached :meth:`~repro.collection.dataset.Dataset.tls_table` is used),
    a :class:`~repro.tlsproxy.table.TransactionTable` directly, or a
    :class:`~repro.collection.shards.ShardedDataset` — which is reduced
    *shard at a time* (one slab materialized at once, rows stacked in
    manifest order), bounding peak memory by the shard size.
    Returns ``(X, names)`` with one row per session; ``names`` equals
    :data:`TLS_FEATURE_NAMES` for the default interval grid.  Output is
    bit-identical to stacking :func:`extract_tls_features` per session:
    every feature is a within-session reduction, so chunking cannot
    change any value.
    """
    names = feature_names(intervals)
    if not isinstance(dataset, TransactionTable) and hasattr(dataset, "iter_tables"):
        with telemetry.span("features.tls", sessions=len(dataset)) as sp:
            blocks = [
                extract_tls_table(table, intervals)
                for table in dataset.iter_tables()
                if table.n_sessions
            ]
            X = (
                np.vstack(blocks)
                if blocks
                else np.empty((0, len(names)))
            )
            sp.set(rows=int(X.shape[0]), cols=int(X.shape[1]))
        return X, names
    table = dataset if isinstance(dataset, TransactionTable) else dataset.tls_table()
    if table.n_sessions == 0:
        return np.empty((0, len(names))), names
    with telemetry.span(
        "features.tls", sessions=table.n_sessions, transactions=table.n_rows
    ) as sp:
        X = extract_tls_table(table, intervals)
        sp.set(rows=int(X.shape[0]), cols=int(X.shape[1]))
    return X, names
