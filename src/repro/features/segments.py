"""Video-segment reconstruction from packet traces.

Packet-level QoE systems recover application objects from the traffic
shape: every sizeable uplink packet is an HTTP request, and the
downlink bytes that follow it (until the next request on the same
connection) are the response.  Responses above a size threshold are
video/audio segments; the rest are control traffic.  ML16's segment
features are computed on this reconstruction, never on ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.packets import PacketTrace

__all__ = ["ReconstructedSegments", "reconstruct_segments"]

#: Uplink packets with more payload than this are treated as requests
#: (pure ACKs are 66 bytes; HTTP request headers are hundreds).
_REQUEST_WIRE_BYTES = 300

#: Responses smaller than this are control traffic, not segments.
_MIN_SEGMENT_BYTES = 20_000


@dataclass(frozen=True)
class ReconstructedSegments:
    """Segments recovered from a packet trace (parallel arrays)."""

    start_times: np.ndarray
    sizes_bytes: np.ndarray
    durations: np.ndarray

    @property
    def n_segments(self) -> int:
        """Number of recovered segments."""
        return int(self.start_times.shape[0])

    def throughputs(self) -> np.ndarray:
        """Per-segment download rates in bytes/second."""
        return self.sizes_bytes / np.maximum(self.durations, 1e-9)

    def inter_arrivals(self) -> np.ndarray:
        """Gaps between consecutive segment starts."""
        if self.n_segments < 2:
            return np.empty(0)
        return np.diff(np.sort(self.start_times))


def reconstruct_segments(
    trace: PacketTrace,
    min_request_bytes: int = _REQUEST_WIRE_BYTES,
    min_segment_bytes: int = _MIN_SEGMENT_BYTES,
) -> ReconstructedSegments:
    """Recover (start, size, duration) of media segments from packets.

    Works per connection: request packets delimit responses; each
    response's bytes and span are accumulated from the downlink data
    packets between two requests.
    """
    empty = np.empty(0)
    if trace.n_packets == 0:
        return ReconstructedSegments(empty, empty, empty)

    starts: list[float] = []
    sizes: list[float] = []
    durations: list[float] = []
    for conn in np.unique(trace.connection_ids):
        rows = trace.connection_ids == conn
        ts = trace.timestamps[rows]
        sz = trace.sizes[rows]
        down = trace.directions[rows] == 1
        is_request = (~down) & (sz >= min_request_bytes)
        req_times = ts[is_request]
        if req_times.size == 0:
            continue
        # Responses run from one request to the next (or trace end).
        bounds = np.append(req_times, np.inf)
        down_ts = ts[down & (sz > 66)]
        down_sz = sz[down & (sz > 66)].astype(np.float64)
        if down_ts.size == 0:
            continue
        which = np.searchsorted(bounds, down_ts, side="right") - 1
        valid = which >= 0
        n_req = req_times.size
        byte_sums = np.zeros(n_req)
        np.add.at(byte_sums, which[valid], down_sz[valid])
        first_ts = np.full(n_req, np.inf)
        np.minimum.at(first_ts, which[valid], down_ts[valid])
        last_ts = np.full(n_req, -np.inf)
        np.maximum.at(last_ts, which[valid], down_ts[valid])
        keep = byte_sums >= min_segment_bytes
        starts.extend(req_times[keep].tolist())
        sizes.extend(byte_sums[keep].tolist())
        durations.extend(
            np.maximum(last_ts[keep] - first_ts[keep], 1e-6).tolist()
        )

    order = np.argsort(starts) if starts else np.empty(0, dtype=np.int64)
    return ReconstructedSegments(
        start_times=np.asarray(starts)[order],
        sizes_bytes=np.asarray(sizes)[order],
        durations=np.asarray(durations)[order],
    )
