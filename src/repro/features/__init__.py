"""Feature extraction.

Two parallel pipelines mirror the paper's comparison:

* :mod:`repro.features.tls_features` — the 38 features of Table 1,
  computed from a session's TLS transactions alone (4 session-level +
  18 transaction statistics + 16 temporal cumulative-byte features).
* :mod:`repro.features.packet_features` — the ML16 baseline features
  (Dimopoulos et al., IMC 2016) computed from packet traces: video
  segment statistics recovered from uplink requests, plus network
  metrics (retransmissions, loss, RTT, throughput).
"""

from repro.features.packet_features import (
    ML16_FEATURE_NAMES,
    extract_ml16_features,
    extract_ml16_matrix,
)
from repro.features.segments import reconstruct_segments
from repro.features.tls_features import (
    TEMPORAL_INTERVALS,
    TLS_FEATURE_NAMES,
    extract_tls_features,
    extract_tls_matrix,
    extract_tls_table,
    feature_groups,
    feature_names,
    temporal_feature_names,
)

__all__ = [
    "TLS_FEATURE_NAMES",
    "TEMPORAL_INTERVALS",
    "extract_tls_features",
    "extract_tls_matrix",
    "extract_tls_table",
    "feature_groups",
    "feature_names",
    "temporal_feature_names",
    "ML16_FEATURE_NAMES",
    "extract_ml16_features",
    "extract_ml16_matrix",
    "reconstruct_segments",
]
