"""Feature extraction.

Two parallel pipelines mirror the paper's comparison:

* :mod:`repro.features.tls_features` — the 38 features of Table 1,
  computed from a session's TLS transactions alone (4 session-level +
  18 transaction statistics + 16 temporal cumulative-byte features).
* :mod:`repro.features.packet_features` — the ML16 baseline features
  (Dimopoulos et al., IMC 2016) computed from packet traces: video
  segment statistics recovered from uplink requests, plus network
  metrics (retransmissions, loss, RTT, throughput).
"""

from repro._deprecation import deprecated_reexports
from repro.features.packet_features import (
    ML16_FEATURE_NAMES,
    extract_ml16_features,
)
from repro.features.segments import reconstruct_segments
from repro.features.tls_features import (
    TEMPORAL_INTERVALS,
    TLS_FEATURE_NAMES,
    extract_tls_features,
    extract_tls_table,
    feature_groups,
    feature_names,
    temporal_feature_names,
)

# The matrix entry points moved to the stable facade
# (repro.api.extract_features); importing them from here warns once.
__getattr__ = deprecated_reexports(
    __name__,
    {
        "extract_tls_matrix": (
            "repro.features.tls_features",
            'repro.api.extract_features(kind="tls")',
        ),
        "extract_ml16_matrix": (
            "repro.features.packet_features",
            'repro.api.extract_features(kind="ml16")',
        ),
    },
)

__all__ = [
    "TLS_FEATURE_NAMES",
    "TEMPORAL_INTERVALS",
    "extract_tls_features",
    "extract_tls_matrix",
    "extract_tls_table",
    "feature_groups",
    "feature_names",
    "temporal_feature_names",
    "ML16_FEATURE_NAMES",
    "extract_ml16_features",
    "extract_ml16_matrix",
    "reconstruct_segments",
]
