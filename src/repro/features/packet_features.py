"""ML16 packet-trace features (Dimopoulos et al., IMC 2016).

The paper's packet-level baseline estimates QoE from features of the
video segments recovered from the traffic plus network-health metrics.
Everything here is computed from the synthesized packet trace alone —
no ground truth leaks in:

* segment statistics — count, size and duration stats, per-segment
  throughput stats, inter-arrival stats (segments via
  :func:`repro.features.segments.reconstruct_segments`);
* network metrics — retransmission count and rate, RTT estimated from
  handshakes, packet counts/sizes, downlink/uplink volume and rates.

This is the feature set ML16 uses for video quality, which the paper
notes is a superset of its re-buffering features, so one extractor
serves the combined-QoE comparison (Table 4).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.collection.dataset import Dataset
from repro.features.segments import reconstruct_segments
from repro.net.packets import PacketTrace

__all__ = ["ML16_FEATURE_NAMES", "extract_ml16_features", "extract_ml16_matrix"]

ML16_FEATURE_NAMES: tuple[str, ...] = (
    # Segment features.
    "SEG_COUNT",
    "SEG_SIZE_MEAN",
    "SEG_SIZE_MED",
    "SEG_SIZE_STD",
    "SEG_SIZE_MIN",
    "SEG_SIZE_MAX",
    "SEG_DUR_MEAN",
    "SEG_DUR_MAX",
    "SEG_TPUT_MEAN",
    "SEG_TPUT_MED",
    "SEG_TPUT_MIN",
    "SEG_IAT_MED",
    "SEG_IAT_MAX",
    # Network metrics.
    "RETX_COUNT",
    "RETX_RATE",
    "RTT_MED",
    "RTT_MAX",
    "PKT_COUNT",
    "PKT_SIZE_MEAN",
    "BYTES_DOWN",
    "BYTES_UP",
    "SESSION_DUR",
    "TPUT_DOWN",
    "TPUT_UP",
)


def _stats_or_zero(values: np.ndarray, funcs) -> list[float]:
    if values.size == 0:
        return [0.0] * len(funcs)
    return [float(f(values)) for f in funcs]


def _rtt_estimates(trace: PacketTrace) -> np.ndarray:
    """Per-connection RTT from the SYN → SYN-ACK gap."""
    estimates = []
    for conn in np.unique(trace.connection_ids):
        rows = trace.connection_ids == conn
        ts = trace.timestamps[rows]
        dirs = trace.directions[rows]
        up_first = ts[dirs == -1]
        down_first = ts[dirs == 1]
        if up_first.size and down_first.size:
            gap = float(down_first.min() - up_first.min())
            if gap > 0:
                estimates.append(2.0 * gap)
    return np.asarray(estimates)


def extract_ml16_features(trace: PacketTrace) -> np.ndarray:
    """The ML16 feature vector of one session's packet trace."""
    if trace.n_packets == 0:
        raise ValueError("cannot extract features from an empty packet trace")
    segments = reconstruct_segments(trace)
    sizes = segments.sizes_bytes
    tputs = segments.throughputs()
    iats = segments.inter_arrivals()
    rtts = _rtt_estimates(trace)

    duration = max(trace.duration, 1e-9)
    bytes_down = float(trace.bytes_down())
    bytes_up = float(trace.bytes_up())
    retx = float(trace.is_retransmit.sum())

    features = [
        float(segments.n_segments),
        *_stats_or_zero(sizes, (np.mean, np.median, np.std, np.min, np.max)),
        *_stats_or_zero(segments.durations, (np.mean, np.max)),
        *_stats_or_zero(tputs, (np.mean, np.median, np.min)),
        *_stats_or_zero(iats, (np.median, np.max)),
        retx,
        float(trace.retransmission_rate()),
        *_stats_or_zero(rtts, (np.median, np.max)),
        float(trace.n_packets),
        float(trace.sizes.mean()),
        bytes_down,
        bytes_up,
        duration,
        bytes_down / duration,
        bytes_up / duration,
    ]
    vector = np.asarray(features, dtype=np.float64)
    if vector.shape[0] != len(ML16_FEATURE_NAMES):
        raise AssertionError("feature vector length drifted from the schema")
    return vector


def extract_ml16_matrix(
    dataset: Dataset, seed: int = 0
) -> tuple[np.ndarray, tuple[str, ...]]:
    """ML16 features for a whole corpus.

    Packet traces are synthesized per session, featurized, and dropped
    — mirroring a streaming extractor — so memory stays flat no matter
    the corpus size.
    """
    if len(dataset) == 0:
        return np.empty((0, len(ML16_FEATURE_NAMES))), ML16_FEATURE_NAMES
    with telemetry.span("features.ml16", sessions=len(dataset)) as sp:
        rows = []
        n_packets = 0
        for i, record in enumerate(dataset):
            trace = record.packet_trace(seed=seed + i)
            n_packets += trace.n_packets
            rows.append(extract_ml16_features(trace))
        X = np.vstack(rows)
        sp.set(rows=int(X.shape[0]), cols=int(X.shape[1]), packets=n_packets)
        telemetry.count("ml16.packets_synthesized", n_packets)
    return X, ML16_FEATURE_NAMES
