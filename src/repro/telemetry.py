"""Pipeline telemetry: hierarchical spans, counters, JSONL traces.

The paper's pitch is a systems claim — QoE inference from ~1400x less
data and ~60x less compute than packet traces — so the reproduction
must be able to account for its own wall-clock, CPU and cache
behaviour.  This module is that accounting layer:

* :func:`span` — a context manager timing one pipeline stage (wall
  via ``perf_counter``, CPU via ``process_time``), nesting into
  whatever span is currently open.  Attributes describe the work
  (``span("collect_corpus", service="svc1", n_sessions=422)``) and
  can be added after the fact with ``sp.set(rows=...)``.
* :func:`count` / :func:`gauge` / :func:`observe` — monotonic
  counters, last-write gauges, and summary histograms
  (count/sum/min/max).  The artifact store feeds per-stage
  ``cache.<stage>.{memory_hit,hit,miss}`` counters through here.
* :func:`tracing` — installs the process-wide :class:`Tracer` and, on
  exit, flushes one JSONL trace file (atomic temp + ``os.replace``).
* :func:`subtrace` + :meth:`Tracer.merge_subtrace` — worker processes
  record into a private tracer whose events/counters ride back with
  the task result and are re-parented under the caller's open span
  (see :mod:`repro.parallel`), so one trace covers the whole fan-out.

**Disabled is the default and costs nothing measurable.**  When no
tracer is installed (``REPRO_TRACE=0``), :func:`span` returns the
module-level :data:`NOOP_SPAN` singleton — no allocation, no
timestamps, no attribute handling — and the metric functions are a
single ``is None`` test.  Tier-1 tests and production hot paths run in
this mode; ``benchmarks/test_bench_telemetry.py`` holds the enabled
mode to its ≤5% overhead budget.

Trace file schema (one JSON object per line), version 1:

* ``{"type": "meta", "version": 1, "wall_s": ..., "cpu_s": ...,
  "pid": ...}`` — first line, totals for the whole trace session.
* ``{"type": "span", "id": int, "parent": int|null, "name": str,
  "t0": float, "wall_s": float, "cpu_s": float, "attrs": {...}?,
  "worker": true?, "error": str?}`` — one per closed span; ``t0`` is
  seconds since the tracer (or, for worker spans, the worker task)
  started.
* ``{"type": "counter"|"gauge", "name": str, "value": number}``
* ``{"type": "hist", "name": str, "count": int, "sum": float,
  "min": float, "max": float}``

:func:`validate_trace` checks exactly this contract (CI runs it on
the smoke trace artifact); :func:`render_report` turns a trace into
the ``python -m repro trace report`` stage tree.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "NOOP_SPAN",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TraceValidationError",
    "Tracer",
    "active_tracer",
    "count",
    "gauge",
    "maybe_tracing",
    "observe",
    "read_trace",
    "render_report",
    "span",
    "subtrace",
    "tracing",
    "validate_trace",
]

TRACE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Spans


class _NoopSpan:
    """The span returned while telemetry is disabled.

    A module-level singleton with no state: entering, exiting and
    ``set`` are empty methods, so an instrumented hot path executes no
    telemetry code beyond one ``is None`` test per ``span()`` call.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


#: The singleton :func:`span` hands out when no tracer is installed.
NOOP_SPAN = _NoopSpan()


def _json_safe(value: Any) -> Any:
    """Coerce a span attribute to a JSON-serializable value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


class Span:
    """One timed, attributed stage in the trace tree."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t0", "_cpu0", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        span_id: int,
        parent_id: int | None,
    ):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes discovered mid-stage (shapes, outcomes)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self.t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self.t0
        cpu = time.process_time() - self._cpu0
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        event: dict[str, Any] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": round(self.t0 - tracer.epoch, 6),
            "wall_s": round(wall, 6),
            "cpu_s": round(cpu, 6),
        }
        if self.attrs:
            event["attrs"] = {k: _json_safe(v) for k, v in self.attrs.items()}
        if exc_type is not None:
            event["error"] = exc_type.__name__
        tracer.events.append(event)
        return False


# ----------------------------------------------------------------------
# Tracer


class Tracer:
    """Collects one trace session's spans and metrics (one per process)."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.cpu_epoch = time.process_time()
        self.events: list[dict[str, Any]] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hists: dict[str, list[float]] = {}  # [count, sum, min, max]
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------
    def start_span(self, name: str, attrs: dict[str, Any]) -> Span:
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        return Span(self, name, attrs, span_id, parent_id)

    def add(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        hist = self.hists.get(name)
        if hist is None:
            self.hists[name] = [1, value, value, value]
        else:
            hist[0] += 1
            hist[1] += value
            hist[2] = min(hist[2], value)
            hist[3] = max(hist[3], value)

    # -- worker merge --------------------------------------------------
    def export(self) -> dict[str, Any]:
        """This tracer's state as picklable data (worker -> parent)."""
        return {
            "events": self.events,
            "counters": self.counters,
            "gauges": self.gauges,
            "hists": self.hists,
            "next_id": self._next_id,
        }

    def merge_subtrace(self, sub: dict[str, Any]) -> None:
        """Fold a worker's exported subtrace into this trace.

        Worker span ids are offset into this tracer's id space and the
        worker's root spans are re-parented under the currently open
        span; worker ``t0`` stays relative to the worker task's start
        (concurrent tasks have no meaningful shared timeline).
        Counters and histograms merge additively, gauges last-write.
        """
        offset = self._next_id
        self._next_id += int(sub["next_id"])
        parent_id = self._stack[-1].span_id if self._stack else None
        for event in sub["events"]:
            event = dict(event)
            event["id"] += offset
            event["parent"] = (
                parent_id if event["parent"] is None else event["parent"] + offset
            )
            event["worker"] = True
            self.events.append(event)
        for name, value in sub["counters"].items():
            self.add(name, value)
        self.gauges.update(sub["gauges"])
        for name, (h_count, h_sum, h_min, h_max) in sub["hists"].items():
            hist = self.hists.get(name)
            if hist is None:
                self.hists[name] = [h_count, h_sum, h_min, h_max]
            else:
                hist[0] += h_count
                hist[1] += h_sum
                hist[2] = min(hist[2], h_min)
                hist[3] = max(hist[3], h_max)

    # -- sinks ---------------------------------------------------------
    def lines(self) -> list[str]:
        """The trace as JSONL lines (meta first, then spans, metrics)."""
        meta = {
            "type": "meta",
            "version": TRACE_SCHEMA_VERSION,
            "wall_s": round(time.perf_counter() - self.epoch, 6),
            "cpu_s": round(time.process_time() - self.cpu_epoch, 6),
            "pid": os.getpid(),
        }
        lines = [json.dumps(meta, sort_keys=True)]
        lines.extend(json.dumps(e, sort_keys=True) for e in self.events)
        for name in sorted(self.counters):
            lines.append(
                json.dumps(
                    {"type": "counter", "name": name, "value": self.counters[name]},
                    sort_keys=True,
                )
            )
        for name in sorted(self.gauges):
            lines.append(
                json.dumps(
                    {"type": "gauge", "name": name, "value": self.gauges[name]},
                    sort_keys=True,
                )
            )
        for name in sorted(self.hists):
            h_count, h_sum, h_min, h_max = self.hists[name]
            lines.append(
                json.dumps(
                    {
                        "type": "hist",
                        "name": name,
                        "count": int(h_count),
                        "sum": h_sum,
                        "min": h_min,
                        "max": h_max,
                    },
                    sort_keys=True,
                )
            )
        return lines

    def flush(self, path: str | Path) -> None:
        """Write the trace file atomically (temp + ``os.replace``)."""
        path = Path(path)
        data = ("\n".join(self.lines()) + "\n").encode()
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# Module-level switchboard

_TRACER: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The installed tracer, or None when telemetry is off."""
    return _TRACER


def span(name: str, /, **attrs: object) -> Span | _NoopSpan:
    """A context manager timing one stage (no-op singleton when off)."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.start_span(name, attrs)


def count(name: str, n: float = 1) -> None:
    """Increment a counter (no-op when telemetry is off)."""
    if _TRACER is not None:
        _TRACER.add(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge to its latest value (no-op when telemetry is off)."""
    if _TRACER is not None:
        _TRACER.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram sample (no-op when telemetry is off)."""
    if _TRACER is not None:
        _TRACER.observe(name, value)


@contextmanager
def tracing(path: str | Path | None = None) -> Iterator[Tracer]:
    """Install a tracer for the block; flush to ``path`` on exit.

    Reentrant: a nested ``tracing()`` joins the active trace session
    and flushes nothing (the outermost owner writes the file).
    """
    global _TRACER
    if _TRACER is not None:
        yield _TRACER
        return
    tracer = Tracer()
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = None
        if path is not None:
            tracer.flush(path)


@contextmanager
def maybe_tracing() -> Iterator[Tracer | None]:
    """:func:`tracing` iff the resolved config enables telemetry."""
    from repro.config import get_config

    config = get_config()
    if not config.trace:
        yield _TRACER
        return
    with tracing(config.trace_path) as tracer:
        yield tracer


@contextmanager
def subtrace() -> Iterator[Tracer]:
    """A private tracer for one worker task, restoring the previous.

    Pool workers must not append into a (fork-)inherited parent tracer
    — their events would never reach the parent process.  Instead each
    task records into a fresh tracer whose :meth:`Tracer.export` rides
    back with the result for :meth:`Tracer.merge_subtrace`.
    """
    global _TRACER
    previous = _TRACER
    tracer = Tracer()
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


# ----------------------------------------------------------------------
# Trace files: reading, validation, reporting


class TraceValidationError(ValueError):
    """A trace file violates the JSONL schema contract."""


_SPAN_FIELDS = {
    "id": int,
    "name": str,
    "t0": (int, float),
    "wall_s": (int, float),
    "cpu_s": (int, float),
}


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace into its event dicts (no validation)."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def validate_trace(path: str | Path) -> list[dict[str, Any]]:
    """Schema-check a trace file; return its events or raise.

    Enforced contract: line 1 is a ``meta`` record of a known schema
    version; every span has the typed required fields and a resolvable
    parent; metric records carry numeric values.
    """
    try:
        events = read_trace(path)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceValidationError(f"unreadable trace {path}: {exc}") from exc
    if not events:
        raise TraceValidationError(f"trace {path} is empty")
    meta = events[0]
    if meta.get("type") != "meta":
        raise TraceValidationError("first trace line must be a meta record")
    if meta.get("version") != TRACE_SCHEMA_VERSION:
        raise TraceValidationError(
            f"unknown trace schema version {meta.get('version')!r}"
        )
    if not isinstance(meta.get("wall_s"), (int, float)):
        raise TraceValidationError("meta record is missing numeric wall_s")
    span_ids = {
        e["id"] for e in events if e.get("type") == "span" and isinstance(e.get("id"), int)
    }
    for i, event in enumerate(events[1:], start=2):
        kind = event.get("type")
        if kind == "span":
            for fld, types in _SPAN_FIELDS.items():
                if not isinstance(event.get(fld), types):
                    raise TraceValidationError(
                        f"line {i}: span field {fld!r} missing or mistyped"
                    )
            parent = event.get("parent")
            if parent is not None and parent not in span_ids:
                raise TraceValidationError(
                    f"line {i}: span parent {parent} is not a recorded span"
                )
            if "attrs" in event and not isinstance(event["attrs"], dict):
                raise TraceValidationError(f"line {i}: span attrs must be an object")
        elif kind in ("counter", "gauge"):
            if not isinstance(event.get("name"), str) or not isinstance(
                event.get("value"), (int, float)
            ):
                raise TraceValidationError(f"line {i}: malformed {kind} record")
        elif kind == "hist":
            if not isinstance(event.get("name"), str) or not all(
                isinstance(event.get(fld), (int, float))
                for fld in ("count", "sum", "min", "max")
            ):
                raise TraceValidationError(f"line {i}: malformed hist record")
        elif kind == "meta":
            raise TraceValidationError(f"line {i}: duplicate meta record")
        else:
            raise TraceValidationError(f"line {i}: unknown record type {kind!r}")
    return events


#: Attributes that distinguish otherwise same-named spans in the report.
_LABEL_ATTRS = ("stage", "name", "command", "service", "kind")


def _span_label(event: dict[str, Any]) -> str:
    attrs = event.get("attrs") or {}
    for key in _LABEL_ATTRS:
        if key in attrs:
            return f"{event['name']}[{attrs[key]}]"
    return event["name"]


class _Node:
    """One aggregated (parent path, label) cell of the report tree."""

    __slots__ = ("label", "n", "wall", "cpu", "workers", "children")

    def __init__(self, label: str):
        self.label = label
        self.n = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.workers = 0
        self.children: dict[str, _Node] = {}


def _build_tree(events: list[dict[str, Any]]) -> tuple[dict[str, Any], _Node]:
    meta = events[0]
    spans = [e for e in events if e.get("type") == "span"]
    by_id = {e["id"]: e for e in spans}
    root = _Node("<root>")
    # Path from a span up to the root determines its aggregation cell.
    cells: dict[int, _Node] = {}

    def cell_for(event: dict[str, Any]) -> _Node:
        cached = cells.get(event["id"])
        if cached is not None:
            return cached
        parent = event.get("parent")
        parent_node = root if parent is None else cell_for(by_id[parent])
        label = _span_label(event)
        node = parent_node.children.get(label)
        if node is None:
            node = parent_node.children[label] = _Node(label)
        cells[event["id"]] = node
        return node

    for event in spans:
        node = cell_for(event)
        node.n += 1
        node.wall += event["wall_s"]
        node.cpu += event["cpu_s"]
        if event.get("worker"):
            node.workers += 1
    return meta, root


def render_report(path: str | Path, top: int = 10) -> str:
    """The human-readable ``trace report``: stage tree, cache, hot paths."""
    events = validate_trace(path)
    meta, root = _build_tree(events)
    total_wall = max(float(meta["wall_s"]), 1e-9)
    lines = [
        f"trace report — {path}",
        f"total: {meta['wall_s']:.3f}s wall, {meta.get('cpu_s', 0.0):.3f}s cpu, "
        f"{sum(1 for e in events if e.get('type') == 'span')} spans",
        "",
        f"{'stage':<58}{'calls':>6}{'wall':>10}{'cpu':>10}{'%':>6}",
    ]

    flat: list[tuple[float, _Node]] = []

    def emit(node: _Node, depth: int) -> None:
        for child in sorted(node.children.values(), key=lambda c: -c.wall):
            label = "  " * depth + child.label
            if child.workers:
                label += " (workers)"
            lines.append(
                f"{label:<58}{child.n:>6}{child.wall:>9.3f}s{child.cpu:>9.3f}s"
                f"{100 * child.wall / total_wall:>5.1f}%"
            )
            # Self time: this cell's wall minus its children's (clamped;
            # worker children overlap in wall time).
            self_wall = max(
                child.wall - sum(g.wall for g in child.children.values()), 0.0
            )
            flat.append((self_wall, child))
            emit(child, depth + 1)

    emit(root, 0)
    root_wall = sum(child.wall for child in root.children.values())
    lines.append(
        f"\ntop-level spans cover {100 * root_wall / total_wall:.1f}% "
        f"of measured wall time"
    )

    counters = {
        e["name"]: e["value"] for e in events if e.get("type") == "counter"
    }
    cache_stages = sorted(
        {
            name.split(".")[1]
            for name in counters
            if name.startswith("cache.") and name.count(".") == 2
        }
    )
    if cache_stages:
        lines.append("\nartifact cache (per stage):")
        for stage in cache_stages:
            hits = counters.get(f"cache.{stage}.hit", 0)
            memory = counters.get(f"cache.{stage}.memory_hit", 0)
            misses = counters.get(f"cache.{stage}.miss", 0)
            total = hits + memory + misses
            rate = 100 * (hits + memory) / total if total else 0.0
            lines.append(
                f"  {stage:<22}{int(hits):>6} disk + {int(memory):>4} mem hits, "
                f"{int(misses):>5} misses  ({rate:.1f}% hit)"
            )

    if flat:
        lines.append("\nhot paths (self wall time):")
        for self_wall, node in sorted(flat, key=lambda t: -t[0])[:top]:
            lines.append(
                f"  {node.label:<40}{self_wall:>9.3f}s"
                f"{100 * self_wall / total_wall:>6.1f}%  ({node.n} calls)"
            )

    other = {
        name: value
        for name, value in counters.items()
        if not name.startswith("cache.")
    }
    if other:
        lines.append("\ncounters:")
        for name in sorted(other):
            value = other[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<40}{shown:>12}")
    hists = [e for e in events if e.get("type") == "hist"]
    if hists:
        lines.append("\nhistograms:")
        for h in hists:
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {h['name']:<40}{h['count']:>8}x  "
                f"mean {mean:.4f}  min {h['min']:.4f}  max {h['max']:.4f}"
            )
    return "\n".join(lines)
