"""Resolved runtime configuration — the only module that reads the
environment.

Every knob the pipeline honours (``REPRO_JOBS``, ``REPRO_SCALE``,
``REPRO_CACHE_DIR``, ``REPRO_SMOKE``, ``REPRO_TRACE``,
``REPRO_SHARD_SIZE``, ``REPRO_SCENARIO``, ``REPRO_WORKLOAD``) is parsed here,
exactly once per distinct environment, into one frozen
:class:`Config`.  Downstream modules call :func:`get_config` (or take
a ``Config`` argument) instead of reading ``os.environ`` themselves —
a lint gate (ruff ``TID251`` plus a CI grep) forbids direct
``os.environ`` access anywhere else under ``src/repro``.

Why one place matters: the knobs interact (worker processes must see
``jobs=1``; the CLI ``--jobs``/``--trace`` flags override the
environment; tests redirect the cache to a tmpdir), and scattering
``os.environ.get`` calls made those interactions untestable without
monkeypatching the process environment.  Tests now use
:func:`override`::

    with repro.config.override(cache_dir=tmp_path):
        cli.main(["cache", "info"])   # reads the tmpdir, env untouched

:func:`get_config` re-parses only when the watched variables actually
change, so calling it in hot paths costs a few dict lookups, not a
parse.  ``python -m repro config show`` prints the resolved values and
where each came from.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "Config",
    "DEFAULT_TRACE_FILENAME",
    "ENV_VARS",
    "JOBS_ENV_VAR",
    "SCALE_ENV_VAR",
    "SCENARIO_ENV_VAR",
    "SHARD_SIZE_ENV_VAR",
    "SMOKE_ENV_VAR",
    "TRACE_ENV_VAR",
    "WORKLOAD_ENV_VAR",
    "get_config",
    "override",
    "set_env_default",
    "set_jobs",
]

JOBS_ENV_VAR = "REPRO_JOBS"
SCALE_ENV_VAR = "REPRO_SCALE"
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
SMOKE_ENV_VAR = "REPRO_SMOKE"
TRACE_ENV_VAR = "REPRO_TRACE"
SHARD_SIZE_ENV_VAR = "REPRO_SHARD_SIZE"
SCENARIO_ENV_VAR = "REPRO_SCENARIO"
WORKLOAD_ENV_VAR = "REPRO_WORKLOAD"

#: The variables that participate in a :class:`Config`, in display order.
ENV_VARS = (
    JOBS_ENV_VAR,
    SCALE_ENV_VAR,
    CACHE_DIR_ENV_VAR,
    SMOKE_ENV_VAR,
    TRACE_ENV_VAR,
    SHARD_SIZE_ENV_VAR,
    SCENARIO_ENV_VAR,
    WORKLOAD_ENV_VAR,
)

#: Where ``REPRO_TRACE=1`` writes its trace (relative to the cwd);
#: any other truthy ``REPRO_TRACE`` value is taken as the path itself.
DEFAULT_TRACE_FILENAME = "repro-trace.jsonl"


@dataclass(frozen=True)
class Config:
    """The resolved knobs, parsed from the environment in one place.

    Attributes
    ----------
    jobs:
        Worker-process count for the parallel layer; ``None`` means
        "all cores" (``REPRO_JOBS`` unset, empty, or ``-1``).
    scale:
        Multiplier on the paper's corpus sizes (``REPRO_SCALE``).
    cache_dir:
        Artifact-store root (``REPRO_CACHE_DIR``).
    smoke:
        Whether the slow cold/warm smoke suite is enabled
        (``REPRO_SMOKE=1``).
    trace:
        Whether pipeline telemetry records spans/counters
        (``REPRO_TRACE``; off by default, so the instrumented hot
        paths run module-level no-op singletons).
    trace_path:
        Where a CLI/run_all trace session flushes its JSONL file;
        ``None`` leaves the trace in memory (library use).
    shard_size:
        Sessions per shard for out-of-core (format-4) corpora
        (``REPRO_SHARD_SIZE``).  ``None`` (the default) keeps corpora
        monolithic; a positive value makes the corpus stage collect
        and store sharded directories instead.
    scenario:
        Network-impairment scenario every collection run streams over
        (``REPRO_SCENARIO``; default ``"identity"``, the unimpaired
        pipeline).  The name is validated against the scenario registry
        at collection time, not here — config must stay importable
        without :mod:`repro.net`.
    workload:
        Traffic workload every collection run generates
        (``REPRO_WORKLOAD``; default ``"has"``, the paper's on-demand
        HTTP adaptive streaming services).  The name is validated
        against the workload registry at collection time, not here —
        config must stay importable without :mod:`repro.workloads`.
    sources:
        ``field name -> provenance`` ("env", "default", or an override
        label such as "--trace"), for ``config show``.
    """

    jobs: int | None = None
    scale: float = 1.0
    cache_dir: Path = field(default_factory=lambda: Path.cwd() / ".cache")
    smoke: bool = False
    trace: bool = False
    trace_path: Path | None = None
    shard_size: int | None = None
    scenario: str = "identity"
    workload: str = "has"
    sources: Mapping[str, str] = field(
        default_factory=dict, compare=False, repr=False
    )

    def describe(self) -> list[tuple[str, str, str, str]]:
        """``(field, value, env var, source)`` rows for ``config show``."""
        trace_value = "off"
        if self.trace:
            trace_value = f"on -> {self.trace_path}" if self.trace_path else "on"
        rows = [
            ("jobs", "all cores" if self.jobs is None else str(self.jobs), JOBS_ENV_VAR),
            ("scale", str(self.scale), SCALE_ENV_VAR),
            ("cache_dir", str(self.cache_dir), CACHE_DIR_ENV_VAR),
            ("smoke", str(self.smoke), SMOKE_ENV_VAR),
            ("trace", trace_value, TRACE_ENV_VAR),
            (
                "shard_size",
                "monolithic" if self.shard_size is None else str(self.shard_size),
                SHARD_SIZE_ENV_VAR,
            ),
            ("scenario", self.scenario, SCENARIO_ENV_VAR),
            ("workload", self.workload, WORKLOAD_ENV_VAR),
        ]
        return [
            (name, value, var, self.sources.get(name, "default"))
            for name, value, var in rows
        ]


def _parse_jobs(raw: str | None) -> int | None:
    if raw is None or raw == "":
        return None
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV_VAR} must be an integer (>= 1 or -1), got {raw!r}"
        ) from None
    if jobs == -1:
        return None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV_VAR} must be >= 1 or -1, got {jobs}")
    return jobs


def _parse_scale(raw: str | None) -> float:
    if raw is None or raw == "":
        return 1.0
    value = float(raw)
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def _parse_shard_size(raw: str | None) -> int | None:
    if raw is None or raw == "" or raw == "0":
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{SHARD_SIZE_ENV_VAR} must be a positive integer "
            f"(or 0/unset for monolithic corpora), got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{SHARD_SIZE_ENV_VAR} must be >= 1 (or 0/unset), got {value}"
        )
    return value


def _parse_scenario(raw: str | None) -> str:
    if raw is None or not raw.strip():
        return "identity"
    # Name validation (with the list of registered scenarios in the
    # error) happens in repro.net.scenarios at collection time.
    return raw.strip()


def _parse_workload(raw: str | None) -> str:
    if raw is None or not raw.strip():
        return "has"
    # Name validation (with the list of registered workloads in the
    # error) happens in repro.workloads at collection time.
    return raw.strip()


def _parse_trace(raw: str | None) -> tuple[bool, Path | None]:
    if raw is None or raw.strip().lower() in ("", "0", "false", "off", "no"):
        return False, None
    if raw.strip().lower() in ("1", "true", "on", "yes"):
        return True, Path(DEFAULT_TRACE_FILENAME)
    return True, Path(raw)


def _parse(snapshot: tuple[str | None, ...]) -> Config:
    """Build a :class:`Config` from an :data:`ENV_VARS` value snapshot."""
    raw = dict(zip(ENV_VARS, snapshot))
    sources = {
        name: "env" if raw[var] not in (None, "") else "default"
        for name, var in (
            ("jobs", JOBS_ENV_VAR),
            ("scale", SCALE_ENV_VAR),
            ("cache_dir", CACHE_DIR_ENV_VAR),
            ("smoke", SMOKE_ENV_VAR),
            ("trace", TRACE_ENV_VAR),
            ("shard_size", SHARD_SIZE_ENV_VAR),
            ("scenario", SCENARIO_ENV_VAR),
            ("workload", WORKLOAD_ENV_VAR),
        )
    }
    sources["trace_path"] = sources["trace"]
    trace, trace_path = _parse_trace(raw[TRACE_ENV_VAR])
    cache_raw = raw[CACHE_DIR_ENV_VAR]
    return Config(
        jobs=_parse_jobs(raw[JOBS_ENV_VAR]),
        scale=_parse_scale(raw[SCALE_ENV_VAR]),
        cache_dir=Path(cache_raw) if cache_raw else Path.cwd() / ".cache",
        smoke=raw[SMOKE_ENV_VAR] == "1",
        trace=trace,
        trace_path=trace_path,
        shard_size=_parse_shard_size(raw[SHARD_SIZE_ENV_VAR]),
        scenario=_parse_scenario(raw[SCENARIO_ENV_VAR]),
        workload=_parse_workload(raw[WORKLOAD_ENV_VAR]),
        sources=sources,
    )


# One parse per distinct environment: the cache key is the raw value
# tuple, so monkeypatched env changes are picked up on the next call
# while steady-state calls cost five dict lookups.
_CACHED: tuple[tuple[str | None, ...], Config] | None = None

# Overrides are a stack so nested ``override()`` contexts compose.
_OVERRIDES: list[Config] = []


def _env_snapshot() -> tuple[str | None, ...]:
    return tuple(os.environ.get(var) for var in ENV_VARS)


def get_config() -> Config:
    """The current resolved configuration.

    An active :func:`override` wins; otherwise the environment is
    (re-)parsed iff any of :data:`ENV_VARS` changed since last call.
    """
    if _OVERRIDES:
        return _OVERRIDES[-1]
    global _CACHED
    snapshot = _env_snapshot()
    if _CACHED is None or _CACHED[0] != snapshot:
        _CACHED = (snapshot, _parse(snapshot))
    return _CACHED[1]


@contextmanager
def override(_source: str = "override", **changes: object) -> Iterator[Config]:
    """Pin configuration fields for a ``with`` block (no env mutation).

    ``changes`` are :class:`Config` field values; everything else keeps
    the enclosing resolution.  Used by tests (point ``cache_dir`` at a
    tmpdir) and by CLI flags (``--trace`` labels itself via
    ``_source``).
    """
    base = get_config()
    sources = dict(base.sources)
    for name in changes:
        sources[name] = _source
    config = dataclasses.replace(base, sources=sources, **changes)
    _OVERRIDES.append(config)
    try:
        yield config
    finally:
        _OVERRIDES.pop()


def set_jobs(jobs: int) -> None:
    """Export a worker count to this process *and* its children.

    The parallel layer spawns worker processes that re-resolve their
    own configuration, so a plain :func:`override` (process-local)
    is not enough: the CLI ``--jobs`` flag and the pool's own
    "workers run sequentially" rule both need the environment updated.
    This is the one sanctioned env write outside the parser.
    """
    if jobs < 1 and jobs != -1:
        raise ValueError(f"jobs must be >= 1 or -1, got {jobs}")
    os.environ[JOBS_ENV_VAR] = str(jobs)


def set_env_default(var: str, value: str) -> None:
    """``os.environ.setdefault`` for a repro knob (test/bench harnesses)."""
    if var not in ENV_VARS:
        raise ValueError(f"unknown repro env var {var!r}")
    os.environ.setdefault(var, value)
